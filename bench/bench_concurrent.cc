// Concurrent throughput experiment for the sharded sampler — the first
// benchmark in the repo where the axis is ops/sec across threads, not
// ns/op on one core.
//
//   * BM_ShardedMixed_90_10 / BM_ShardedMixed_50_50: T caller threads
//     (1..16) hammer one "sharded:halt" instance (n = 2^20, 32 shards)
//     with a mixed workload — each op is a full PSS query (α, β) = (1, 0)
//     or a SetWeight to a random live id, at the stated read/write ratio.
//     Mutations lock one shard; queries sweep all shards one lock at a
//     time with rotating start offsets, so throughput scales by
//     pipelining queries across shards.
//   * BM_SingleThreadBaseline: the same instance and mix on one thread —
//     the denominator for the scaling ratio (identical to the /threads:1
//     rows; kept as an explicitly named row for cross-PR tracking).
//
// The json tee (BENCH_concurrent.json) carries, per run, the thread count
// and the aggregate ops_per_sec / samples_per_sec counters (summed across
// threads, rated against wall time). The acceptance gate for the
// concurrent subsystem reads the ratio of samples_per_sec at
// /threads:8 vs /threads:1 on the 90/10 mix. Note: the ratio is only
// meaningful on a machine with >= 8 hardware threads.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/sampler.h"
#include "util/random.h"

namespace {

constexpr uint64_t kN = uint64_t{1} << 20;
constexpr int kNumShards = 32;

struct Workload {
  std::unique_ptr<dpss::Sampler> sampler;
  std::vector<dpss::ItemId> ids;
};

Workload* g_work = nullptr;

// Thread 0 builds the shared instance before the first iteration barrier
// releases the other threads (Google Benchmark's standard multi-threaded
// setup pattern); thread 0 tears it down after the exit barrier.
void SetupShared() {
  dpss::SamplerSpec spec;
  spec.seed = 0xbeefcafe;
  spec.num_shards = kNumShards;
  spec.num_threads = 1;  // concurrency comes from the caller threads
  auto work = std::make_unique<Workload>();
  work->sampler = dpss::MakeSampler("sharded:halt", spec);
  const std::vector<uint64_t> weights = dpss::bench::MakeWeights(
      kN, dpss::bench::WeightDist::kUniform, /*seed=*/42);
  const dpss::Status st =
      work->sampler->InsertBatch(weights, &work->ids);
  if (!st.ok()) std::abort();
  g_work = work.release();
}

void TeardownShared() {
  delete g_work;
  g_work = nullptr;
}

// One mixed-workload run: write_pct% of ops are SetWeight on a random
// live id, the rest are full queries. Per-thread engines keep the op
// stream contention-free; the sampler itself is the only shared state.
void RunMixed(benchmark::State& state, int write_pct) {
  if (state.thread_index() == 0) SetupShared();
  dpss::RandomEngine rng(0x1234u + 0x9e3779b9u *
                                       static_cast<uint64_t>(
                                           state.thread_index()));
  std::vector<dpss::ItemId> out;
  const dpss::Rational64 alpha{1, 1};
  const dpss::Rational64 beta{0, 1};
  int64_t samples = 0;
  int64_t writes = 0;
  for (auto _ : state) {
    if (rng.NextBelow(100) < static_cast<uint64_t>(write_pct)) {
      const dpss::ItemId id =
          g_work->ids[rng.NextBelow(g_work->ids.size())];
      const dpss::Status st =
          g_work->sampler->SetWeight(id, 1 + rng.NextBelow(1 << 10));
      if (!st.ok()) std::abort();
      ++writes;
    } else {
      const dpss::Status st =
          g_work->sampler->SampleInto(alpha, beta, &out);
      if (!st.ok()) std::abort();
      benchmark::DoNotOptimize(out.data());
      ++samples;
    }
  }
  // Rate counters are summed across threads and rated against wall time:
  // aggregate throughput, the number the scaling gate reads. The constant
  // descriptors use kAvgThreads so per-thread summation does not inflate
  // them.
  state.counters["samples_per_sec"] = benchmark::Counter(
      static_cast<double>(samples), benchmark::Counter::kIsRate);
  state.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(samples + writes), benchmark::Counter::kIsRate);
  state.counters["threads"] = benchmark::Counter(
      static_cast<double>(state.threads()), benchmark::Counter::kAvgThreads);
  state.counters["num_shards"] = benchmark::Counter(
      kNumShards, benchmark::Counter::kAvgThreads);
  state.counters["write_pct"] = benchmark::Counter(
      write_pct, benchmark::Counter::kAvgThreads);
  if (state.thread_index() == 0) TeardownShared();
}

void BM_ShardedMixed_90_10(benchmark::State& state) {
  RunMixed(state, /*write_pct=*/10);
}
BENCHMARK(BM_ShardedMixed_90_10)->ThreadRange(1, 16)->UseRealTime();

void BM_ShardedMixed_50_50(benchmark::State& state) {
  RunMixed(state, /*write_pct=*/50);
}
BENCHMARK(BM_ShardedMixed_50_50)->ThreadRange(1, 16)->UseRealTime();

void BM_SingleThreadBaseline(benchmark::State& state) {
  RunMixed(state, /*write_pct=*/10);
}
BENCHMARK(BM_SingleThreadBaseline);

}  // namespace

int main(int argc, char** argv) {
  return dpss::bench::RunWithJsonReport(argc, argv, "BENCH_concurrent.json");
}
