// JSON tee reporter for the benchmarks: prints the normal console table AND
// writes a machine-readable summary (ns/query, μ, n, iterations, counters)
// so the performance trajectory can be tracked across PRs. Used by
// bench_query_mu (BENCH_query_mu.json), bench_query_scaling
// (BENCH_query_scaling.json) and bench_memory (BENCH_memory.json); compare
// any two outputs with tools/bench_diff.

#ifndef DPSS_BENCH_BENCH_JSON_H_
#define DPSS_BENCH_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace dpss {
namespace bench {

class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(std::string path) : path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      // Per-iteration real time in the run's time unit (ns by default).
      row.ns_per_query = run.GetAdjustedRealTime();
      row.iterations = run.iterations;
      for (const auto& [key, counter] : run.counters) {
        row.counters.emplace_back(key, counter.value);
      }
      rows_.push_back(std::move(row));
    }
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      std::fprintf(f, "  {\"name\": \"%s\", \"ns_per_query\": %.2f, "
                      "\"iterations\": %lld",
                   row.name.c_str(), row.ns_per_query,
                   static_cast<long long>(row.iterations));
      for (const auto& [key, value] : row.counters) {
        std::fprintf(f, ", \"%s\": %.6g", key.c_str(), value);
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::fprintf(stdout, "wrote %s (%zu entries)\n", path_.c_str(),
                 rows_.size());
  }

 private:
  struct Row {
    std::string name;
    double ns_per_query = 0;
    int64_t iterations = 0;
    std::vector<std::pair<std::string, double>> counters;
  };
  std::string path_;
  std::vector<Row> rows_;
};

// Shared main for benchmarks that want the JSON tee.
inline int RunWithJsonReport(int argc, char** argv, const char* json_path) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTeeReporter reporter(json_path);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace bench
}  // namespace dpss

#endif  // DPSS_BENCH_BENCH_JSON_H_
