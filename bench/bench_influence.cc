// Experiment E8 — the Appendix A.1 application workload: reverse-reachable
// set sampling on a dynamic graph.
//
// Paper claim: in a dynamic network each edge update changes the activation
// probability of every sibling in-edge; DPSS absorbs it in O(1), while a
// fixed-probability (DSS-style) per-node sampler must rebuild the touched
// node's structure — Θ(in-degree) per update, which hurts exactly on the
// heavy-tailed hubs that matter for influence. Expected shape: DPSS edge
// insertion flat in graph size; local-rebuild insertion tracks hub degree;
// RR-set sampling throughput comparable for both.

#include <benchmark/benchmark.h>

#include <vector>

#include "apps/graph.h"
#include "apps/influence_max.h"
#include "baseline/bucket_jump.h"
#include "util/random.h"

namespace {

dpss::Graph MakeGraph(uint32_t n) {
  return dpss::Graph::PreferentialAttachment(n, 3, 8, 42);
}

void BM_DpssAddEdge(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const dpss::Graph g = MakeGraph(n);
  dpss::InfluenceMaximizer im(n, 1);
  for (uint32_t u = 0; u < n; ++u) {
    for (const auto& e : g.OutEdges(u)) im.AddEdge(u, e.to, e.weight);
  }
  dpss::RandomEngine rng(2);
  for (auto _ : state) {
    // Bias toward low node ids = preferential-attachment hubs.
    const uint32_t v = static_cast<uint32_t>(rng.NextBelow(1 + n / 64));
    const uint32_t u = static_cast<uint32_t>(rng.NextBelow(n));
    im.AddEdge(u, v, 1 + rng.NextBelow(8));
  }
}
// Iteration counts are pinned: every iteration permanently grows the graph
// (and the hubs), so auto-scaling iterations would measure ever-heavier
// instances.
BENCHMARK(BM_DpssAddEdge)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 16)
    ->Iterations(20000);

// DSS stand-in: per-node BucketJumpSampler over in-edges with probabilities
// w/Σ_in w, rebuilt from scratch whenever the node's in-weight changes.
class LocalRebuildInfluence {
 public:
  explicit LocalRebuildInfluence(uint32_t n) : in_edges_(n), samplers_(n) {}

  void AddEdge(uint32_t u, uint32_t v, uint64_t w) {
    in_edges_[v].push_back({u, w});
    RebuildNode(v);
  }

  uint64_t InDegree(uint32_t v) const { return in_edges_[v].size(); }

 private:
  void RebuildNode(uint32_t v) {
    uint64_t sum = 0;
    for (const auto& e : in_edges_[v]) sum += e.second;
    samplers_[v] = std::make_unique<dpss::BucketJumpSampler>();
    for (size_t i = 0; i < in_edges_[v].size(); ++i) {
      samplers_[v]->Insert(i, dpss::BigUInt(in_edges_[v][i].second),
                           dpss::BigUInt(sum));
    }
  }

  std::vector<std::vector<std::pair<uint32_t, uint64_t>>> in_edges_;
  std::vector<std::unique_ptr<dpss::BucketJumpSampler>> samplers_;
};

void BM_LocalRebuildAddEdge(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const dpss::Graph g = MakeGraph(n);
  LocalRebuildInfluence im(n);
  for (uint32_t u = 0; u < n; ++u) {
    for (const auto& e : g.OutEdges(u)) im.AddEdge(u, e.to, e.weight);
  }
  dpss::RandomEngine rng(3);
  for (auto _ : state) {
    const uint32_t v = static_cast<uint32_t>(rng.NextBelow(1 + n / 64));
    const uint32_t u = static_cast<uint32_t>(rng.NextBelow(n));
    im.AddEdge(u, v, 1 + rng.NextBelow(8));
  }
}
BENCHMARK(BM_LocalRebuildAddEdge)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 16)
    ->Iterations(2000);

void BM_DpssRRSet(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const dpss::Graph g = MakeGraph(n);
  dpss::InfluenceMaximizer im(n, 4);
  for (uint32_t u = 0; u < n; ++u) {
    for (const auto& e : g.OutEdges(u)) im.AddEdge(u, e.to, e.weight);
  }
  dpss::RandomEngine rng(5);
  uint64_t nodes = 0;
  for (auto _ : state) {
    const auto rr = im.SampleRRSet(rng);
    nodes += rr.size();
    benchmark::DoNotOptimize(rr);
  }
  state.counters["rr_size"] =
      static_cast<double>(nodes) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_DpssRRSet)->RangeMultiplier(4)->Range(1 << 10, 1 << 16);

}  // namespace

BENCHMARK_MAIN();
