// Experiment E4 — preprocessing time vs n.
//
// Paper claim (Theorem 1.1): the HALT structure is built in O(n) worst-case
// time. Expected shape: ns/item flat in n.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/dpss_sampler.h"

namespace {

void BM_Build(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const auto weights =
      dpss::bench::MakeWeights(n, dpss::bench::WeightDist::kUniform, 1);
  for (auto _ : state) {
    dpss::DpssSampler s(weights, 2);
    benchmark::DoNotOptimize(s.size());
  }
  state.counters["ns_per_item"] = benchmark::Counter(
      static_cast<double>(n), benchmark::Counter::kIsIterationInvariantRate |
                                  benchmark::Counter::kInvert);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Build)->RangeMultiplier(4)->Range(1 << 10, 1 << 20);

void BM_BuildExpSpread(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const auto weights = dpss::bench::MakeWeights(
      n, dpss::bench::WeightDist::kExponentialSpread, 3);
  for (auto _ : state) {
    dpss::DpssSampler s(weights, 4);
    benchmark::DoNotOptimize(s.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BuildExpSpread)->RangeMultiplier(4)->Range(1 << 10, 1 << 20);

}  // namespace

BENCHMARK_MAIN();
