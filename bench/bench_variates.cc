// Experiment E5 — random variate generation cost.
//
// Paper claims: Ber of types (i)/(ii)/(iii) in O(1) expected time
// (Fact 1, Theorem 3.1); B-Geo(p, n) in O(1) expected time (Fact 3);
// T-Geo(p, n) in O(1) expected time (Theorem 1.3). Expected shape: flat in
// n across all regimes, with moderate constants for the arbitrary-precision
// (type ii/iii) generators.

#include <benchmark/benchmark.h>

#include "bigint/big_uint.h"
#include "random/bernoulli.h"
#include "random/geometric.h"
#include "util/random.h"

namespace {

using dpss::BigUInt;

void BM_BernoulliRationalSmall(benchmark::State& state) {
  dpss::RandomEngine rng(1);
  const BigUInt num(uint64_t{3}), den(uint64_t{7});
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpss::SampleBernoulliRational(num, den, rng));
  }
}
BENCHMARK(BM_BernoulliRationalSmall);

void BM_BernoulliRationalMultiWord(benchmark::State& state) {
  dpss::RandomEngine rng(2);
  const BigUInt num = BigUInt::PowerOfTwo(150);
  const BigUInt den = BigUInt::MulU64(num, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpss::SampleBernoulliRational(num, den, rng));
  }
}
BENCHMARK(BM_BernoulliRationalMultiWord);

void BM_BernoulliPow(benchmark::State& state) {
  dpss::RandomEngine rng(3);
  const uint64_t m = state.range(0);
  const BigUInt num(uint64_t{999}), den(uint64_t{1000});
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpss::SampleBernoulliPow(num, den, m, rng));
  }
}
BENCHMARK(BM_BernoulliPow)->RangeMultiplier(8)->Range(1, 1 << 18);

void BM_BernoulliPStar(benchmark::State& state) {
  dpss::RandomEngine rng(4);
  const uint64_t n = state.range(0);
  const BigUInt qnum(uint64_t{1});
  const BigUInt qden = BigUInt::MulU64(BigUInt(n), 2);  // q = 1/(2n)
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpss::SampleBernoulliPStar(qnum, qden, n, rng));
  }
}
BENCHMARK(BM_BernoulliPStar)->RangeMultiplier(8)->Range(2, 1 << 18);

void BM_BernoulliHalfRecipPStar(benchmark::State& state) {
  dpss::RandomEngine rng(5);
  const uint64_t n = state.range(0);
  const BigUInt qnum(uint64_t{1});
  const BigUInt qden = BigUInt::MulU64(BigUInt(n), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dpss::SampleBernoulliHalfRecipPStar(qnum, qden, n, rng));
  }
}
BENCHMARK(BM_BernoulliHalfRecipPStar)->RangeMultiplier(8)->Range(2, 1 << 18);

// B-Geo regimes: p >= 1/2 (direct trials), moderate p (block path), tiny p
// (capped block: one coin decides "beyond n").
void BM_BoundedGeoLargeP(benchmark::State& state) {
  dpss::RandomEngine rng(6);
  const uint64_t n = state.range(0);
  const BigUInt num(uint64_t{3}), den(uint64_t{4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpss::SampleBoundedGeo(num, den, n, rng));
  }
}
BENCHMARK(BM_BoundedGeoLargeP)->RangeMultiplier(64)->Range(4, 1 << 24);

void BM_BoundedGeoMidP(benchmark::State& state) {
  dpss::RandomEngine rng(7);
  const uint64_t n = state.range(0);
  const BigUInt num(uint64_t{1}), den(uint64_t{100});
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpss::SampleBoundedGeo(num, den, n, rng));
  }
}
BENCHMARK(BM_BoundedGeoMidP)->RangeMultiplier(64)->Range(4, 1 << 24);

void BM_BoundedGeoTinyP(benchmark::State& state) {
  dpss::RandomEngine rng(8);
  const uint64_t n = state.range(0);
  const BigUInt num(uint64_t{1});
  const BigUInt den = BigUInt::PowerOfTwo(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpss::SampleBoundedGeo(num, den, n, rng));
  }
}
BENCHMARK(BM_BoundedGeoTinyP)->RangeMultiplier(64)->Range(4, 1 << 24);

// T-Geo regimes by case of Theorem 1.3.
void BM_TruncatedGeoCase21(benchmark::State& state) {
  dpss::RandomEngine rng(9);
  const uint64_t n = state.range(0);
  const BigUInt num(uint64_t{1}), den(uint64_t{2});  // n·p >= 1
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpss::SampleTruncatedGeo(num, den, n, rng));
  }
}
BENCHMARK(BM_TruncatedGeoCase21)->RangeMultiplier(64)->Range(4, 1 << 24);

void BM_TruncatedGeoCase22(benchmark::State& state) {
  dpss::RandomEngine rng(10);
  const uint64_t n = state.range(0);
  const BigUInt num(uint64_t{1});
  const BigUInt den = BigUInt::MulU64(BigUInt(n), 4);  // n·p = 1/4 < 1
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpss::SampleTruncatedGeo(num, den, n, rng));
  }
}
BENCHMARK(BM_TruncatedGeoCase22)->RangeMultiplier(64)->Range(4, 1 << 24);

}  // namespace

BENCHMARK_MAIN();
