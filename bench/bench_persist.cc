// Persistence-layer experiment — what durability costs and how fast the
// system comes back:
//
//   * BM_SnapshotSave / BM_SnapshotLoad: container snapshot throughput
//     (bytes_per_second => MB/s) vs item count n for the "halt" backend,
//     via persist::SaveSampler / persist::LoadSampler on in-memory state.
//   * BM_WalAppend/sync_every: ns per logged SetWeight through a
//     DurableSampler on a MemEnv, at the three durability policies —
//     fsync every record (1), group commit (64), and OS-buffered only (0).
//     MemEnv's Sync is free, so the deltas isolate the *logging* overhead
//     (encode + CRC + append + policy bookkeeping); on a real disk the
//     sync_every=1 column additionally pays one device fsync per op.
//   * BM_Recovery/records: RecoveryManager::Open wall time vs WAL length
//     (fixed 4096-item snapshot + `records` logged updates), i.e. how
//     recovery time scales with the un-checkpointed tail.
//   * BM_RecoveryOpenFormat/{v1_parse,v2_mmap}: Open wall time on a real
//     filesystem (SystemEnv) at n ∈ {2^16, 2^20} for the classic parsed
//     (v1) container vs the arena-image (v2) container that recovery
//     adopts through a copy-on-write mmap — the headline "mmap-instant
//     recovery" series (ISSUE 7 acceptance: v2 >= 10x faster at 2^20).
//   * BM_CheckpointAfterChurn/{full,incremental}: bytes and time of one
//     checkpoint after re-weighting 1% of n items — full rewrites O(n),
//     incremental writes only the dirtied pages (acceptance: <= 5% of the
//     full snapshot's bytes).
//
// Results are teed to BENCH_persist.json for cross-PR tracking.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/sampler.h"
#include "persist/env.h"
#include "persist/recovery.h"
#include "persist/snapshot.h"

namespace {

using dpss::persist::DurableOptions;
using dpss::persist::MemEnv;
using dpss::persist::RecoveryManager;

std::unique_ptr<dpss::Sampler> BuildHalt(uint64_t n, dpss::SamplerSpec* spec) {
  spec->seed = 7;
  auto s = dpss::MakeSampler("halt", *spec);
  const auto weights =
      dpss::bench::MakeWeights(n, dpss::bench::WeightDist::kUniform, 11);
  (void)s->InsertBatch(weights, nullptr);
  return s;
}

void BM_SnapshotSave(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  dpss::SamplerSpec spec;
  const auto s = BuildHalt(n, &spec);
  std::string bytes;
  for (auto _ : state) {
    bytes.clear();
    const dpss::Status st = dpss::persist::SaveSampler(*s, spec, &bytes);
    if (!st.ok()) state.SkipWithError("save failed");
    benchmark::DoNotOptimize(bytes.data());
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes.size());
  state.counters["items"] = static_cast<double>(n);
  state.SetBytesProcessed(static_cast<int64_t>(bytes.size()) *
                          state.iterations());
}
BENCHMARK(BM_SnapshotSave)->Range(1 << 10, 1 << 18);

void BM_SnapshotLoad(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  dpss::SamplerSpec spec;
  const auto s = BuildHalt(n, &spec);
  std::string bytes;
  if (!dpss::persist::SaveSampler(*s, spec, &bytes).ok()) {
    state.SkipWithError("save failed");
    return;
  }
  for (auto _ : state) {
    auto loaded = dpss::persist::LoadSampler(bytes);
    if (!loaded.ok()) state.SkipWithError("load failed");
    benchmark::DoNotOptimize(loaded);
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes.size());
  state.counters["items"] = static_cast<double>(n);
  state.SetBytesProcessed(static_cast<int64_t>(bytes.size()) *
                          state.iterations());
}
BENCHMARK(BM_SnapshotLoad)->Range(1 << 10, 1 << 18);

void BM_WalAppend(benchmark::State& state) {
  const uint32_t sync_every = static_cast<uint32_t>(state.range(0));
  MemEnv env;
  DurableOptions opts;
  opts.backend = "halt";
  opts.spec.seed = 7;
  opts.wal_sync_every = sync_every;
  opts.env = &env;
  auto d = RecoveryManager::Open("bench", opts);
  if (!d.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  constexpr uint64_t kItems = 4096;
  std::vector<dpss::ItemId> ids;
  const auto weights = dpss::bench::MakeWeights(
      kItems, dpss::bench::WeightDist::kUniform, 13);
  (void)(*d)->InsertBatch(weights, &ids);
  dpss::RandomEngine rng(17);
  for (auto _ : state) {
    const dpss::Status st = (*d)->SetWeight(
        ids[rng.NextBelow(kItems)], 1 + rng.NextBelow(uint64_t{1} << 16));
    if (!st.ok()) state.SkipWithError("logged update failed");
  }
  state.counters["sync_every"] = sync_every;
  state.counters["wal_bytes"] = static_cast<double>((*d)->wal_bytes());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalAppend)->Arg(1)->Arg(64)->Arg(0);

void BM_Recovery(benchmark::State& state) {
  const uint64_t records = static_cast<uint64_t>(state.range(0));
  // Prepare a directory with a 4096-item snapshot and `records` logged
  // updates, then measure Open (load + replay + rotate) against a clone
  // each iteration — Open itself rotates, so it must see pristine state.
  MemEnv golden;
  {
    DurableOptions opts;
    opts.backend = "halt";
    opts.spec.seed = 7;
    opts.wal_sync_every = 0;
    opts.env = &golden;
    auto d = RecoveryManager::Open("bench", opts);
    if (!d.ok()) {
      state.SkipWithError("prepare failed");
      return;
    }
    constexpr uint64_t kItems = 4096;
    std::vector<dpss::ItemId> ids;
    const auto weights = dpss::bench::MakeWeights(
        kItems, dpss::bench::WeightDist::kUniform, 13);
    (void)(*d)->InsertBatch(weights, &ids);
    if (!(*d)->Checkpoint().ok()) {
      state.SkipWithError("checkpoint failed");
      return;
    }
    dpss::RandomEngine rng(19);
    for (uint64_t i = 0; i < records; ++i) {
      (void)(*d)->SetWeight(ids[rng.NextBelow(kItems)],
                            1 + rng.NextBelow(uint64_t{1} << 16));
    }
    (void)(*d)->SyncWal();
  }
  for (auto _ : state) {
    state.PauseTiming();
    auto env = std::make_unique<MemEnv>();
    env->CloneFrom(golden);
    DurableOptions opts;
    opts.backend = "halt";
    opts.spec.seed = 7;
    opts.env = env.get();
    state.ResumeTiming();
    auto d = RecoveryManager::Open("bench", opts);
    if (!d.ok()) state.SkipWithError("recovery failed");
    benchmark::DoNotOptimize(d);
  }
  state.counters["wal_records"] = static_cast<double>(records);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Recovery)->Arg(0)->Arg(1 << 8)->Arg(1 << 11)->Arg(1 << 14);

// --- v2 mmap recovery vs v1 parse (real filesystem) -----------------------

// Copies every file of flat directory `src` into `dst`, deleting whatever
// `dst` held first — the Env-only `rm -f dst/*; cp src/* dst/`.
bool ResetDirCopy(dpss::persist::Env* env, const std::string& src,
                  const std::string& dst) {
  if (!env->CreateDir(dst).ok()) return false;
  if (auto old = env->ListDir(dst); old.ok()) {
    for (const std::string& f : *old) (void)env->DeleteFile(dst + "/" + f);
  }
  auto files = env->ListDir(src);
  if (!files.ok()) return false;
  for (const std::string& f : *files) {
    std::string bytes;
    if (!env->ReadFileToString(src + "/" + f, &bytes).ok()) return false;
    auto w = env->NewWritableFile(dst + "/" + f, /*truncate=*/true);
    if (!w.ok() || !(*w)->Append(bytes).ok() || !(*w)->Close().ok()) {
      return false;
    }
  }
  return true;
}

// Total bytes of the `prefix`-named files in `dir` (snapshot-*/delta-*).
double DirFileBytes(dpss::persist::Env* env, const std::string& dir,
                    const std::string& prefix) {
  double total = 0;
  if (auto files = env->ListDir(dir); files.ok()) {
    for (const std::string& f : *files) {
      if (f.rfind(prefix, 0) != 0) continue;
      std::string bytes;
      if (env->ReadFileToString(dir + "/" + f, &bytes).ok()) {
        total += static_cast<double>(bytes.size());
      }
    }
  }
  return total;
}

// One Open on a pristine directory per iteration, on the real filesystem:
// the v1 column parses the container payload item by item; the v2 column
// maps the arena image copy-on-write and adopts it, so the load side is
// page-table work instead of a parse (and its rotation writes an empty
// delta instead of rewriting O(n) bytes).
void BM_RecoveryOpenFormat(benchmark::State& state,
                           dpss::persist::SnapshotFormat format,
                           const char* tag) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  dpss::persist::Env* env = dpss::persist::SystemEnv();
  const std::string base = "bench_persist_tmp";
  const std::string suffix =
      std::string(tag) + "_" + std::to_string(n);
  const std::string golden = base + "/golden_" + suffix;
  const std::string work = base + "/work_" + suffix;
  (void)env->CreateDir(base);

  DurableOptions opts;
  opts.backend = "naive";
  opts.spec.seed = 7;
  opts.wal_sync_every = 0;
  opts.snapshot_format = format;
  // v2 Opens rotate by extending the delta chain (churn-proportional);
  // v1 has no choice but a full rewrite.
  opts.incremental_checkpoints =
      format == dpss::persist::SnapshotFormat::kArena;
  opts.env = env;

  // Prepare the golden directory once: n items, checkpointed in `format`.
  {
    if (auto old = env->ListDir(golden); old.ok()) {
      for (const std::string& f : *old) (void)env->DeleteFile(golden + "/" + f);
    }
    auto d = RecoveryManager::Open(golden, opts);
    if (!d.ok()) {
      state.SkipWithError("prepare open failed");
      return;
    }
    const auto weights =
        dpss::bench::MakeWeights(n, dpss::bench::WeightDist::kUniform, 13);
    if (!(*d)->InsertBatch(weights, nullptr).ok() ||
        !(*d)->Checkpoint(dpss::persist::CheckpointMode::kFull).ok()) {
      state.SkipWithError("prepare failed");
      return;
    }
  }

  for (auto _ : state) {
    state.PauseTiming();
    if (!ResetDirCopy(env, golden, work)) {
      state.SkipWithError("dir copy failed");
      break;
    }
    state.ResumeTiming();
    auto d = RecoveryManager::Open(work, opts);
    if (!d.ok()) {
      state.SkipWithError("open failed");
      break;
    }
    benchmark::DoNotOptimize(d);
  }
  state.counters["items"] = static_cast<double>(n);
  state.counters["image_bytes"] = DirFileBytes(env, golden, "snapshot-");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_RecoveryOpenFormat, v1_parse,
                  dpss::persist::SnapshotFormat::kClassic, "v1")
    ->Arg(1 << 16)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_RecoveryOpenFormat, v2_mmap,
                  dpss::persist::SnapshotFormat::kArena, "v2")
    ->Arg(1 << 16)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

// --- Incremental checkpoint bytes after bounded churn ---------------------

// Re-weights a 1%-of-n churn window (outside the timer), then takes one
// checkpoint (inside it). The full column rewrites the whole arena image;
// the incremental column writes only the pages those updates dirtied. The
// `checkpoint_bytes` counter is the last checkpoint's file size — the
// <= 5% acceptance ratio reads straight out of the full vs incremental
// series.
//
// Two churn shapes: `windowed` re-weights a contiguous (rotating) id
// window — dirty pages proportional to the churn, the format's design
// case — while the scattered column draws ids uniformly, the pessimal
// case for page-granular tracking (10^4 scattered 8-byte updates touch
// nearly every weight page, so its delta approaches the weight-array
// size; cost is bounded by pages *touched*, not items updated).
void BM_CheckpointAfterChurn(benchmark::State& state, bool incremental,
                             bool windowed) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  MemEnv env;
  DurableOptions opts;
  opts.backend = "naive";
  opts.spec.seed = 7;
  opts.wal_sync_every = 0;
  opts.incremental_checkpoints = incremental;
  // Never force a full snapshot mid-run: this series measures the steady
  // chain-extension cost, and chain length is bounded by iteration count.
  opts.max_delta_chain = 1u << 30;
  opts.env = &env;
  auto d = RecoveryManager::Open("bench", opts);
  if (!d.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  std::vector<dpss::ItemId> ids;
  const auto weights =
      dpss::bench::MakeWeights(n, dpss::bench::WeightDist::kUniform, 13);
  if (!(*d)->InsertBatch(weights, &ids).ok() ||
      !(*d)->Checkpoint(dpss::persist::CheckpointMode::kFull).ok()) {
    state.SkipWithError("baseline failed");
    return;
  }
  const uint64_t churn = n / 100;
  dpss::RandomEngine rng(23);
  uint64_t window_start = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (uint64_t i = 0; i < churn; ++i) {
      const uint64_t pick =
          windowed ? (window_start + i) % n : rng.NextBelow(n);
      (void)(*d)->SetWeight(ids[pick], 1 + rng.NextBelow(uint64_t{1} << 16));
    }
    window_start = (window_start + churn) % n;
    state.ResumeTiming();
    const dpss::Status st = (*d)->Checkpoint(
        incremental ? dpss::persist::CheckpointMode::kIncremental
                    : dpss::persist::CheckpointMode::kFull);
    if (!st.ok()) {
      state.SkipWithError("checkpoint failed");
      break;
    }
  }
  const std::string tip = std::string("bench/") +
                          (incremental ? "delta-" : "snapshot-") +
                          std::to_string((*d)->epoch());
  std::string tip_bytes;
  (void)env.ReadFileToString(tip, &tip_bytes);
  state.counters["checkpoint_bytes"] = static_cast<double>(tip_bytes.size());
  state.counters["items"] = static_cast<double>(n);
  state.counters["churn_items"] = static_cast<double>(churn);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_CheckpointAfterChurn, full, false, true)
    ->Arg(1 << 16)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CheckpointAfterChurn, incremental, true, true)
    ->Arg(1 << 16)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CheckpointAfterChurn, incremental_scattered, true, false)
    ->Arg(1 << 16)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dpss::bench::RunWithJsonReport(argc, argv, "BENCH_persist.json");
}
