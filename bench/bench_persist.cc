// Persistence-layer experiment — what durability costs and how fast the
// system comes back:
//
//   * BM_SnapshotSave / BM_SnapshotLoad: container snapshot throughput
//     (bytes_per_second => MB/s) vs item count n for the "halt" backend,
//     via persist::SaveSampler / persist::LoadSampler on in-memory state.
//   * BM_WalAppend/sync_every: ns per logged SetWeight through a
//     DurableSampler on a MemEnv, at the three durability policies —
//     fsync every record (1), group commit (64), and OS-buffered only (0).
//     MemEnv's Sync is free, so the deltas isolate the *logging* overhead
//     (encode + CRC + append + policy bookkeeping); on a real disk the
//     sync_every=1 column additionally pays one device fsync per op.
//   * BM_Recovery/records: RecoveryManager::Open wall time vs WAL length
//     (fixed 4096-item snapshot + `records` logged updates), i.e. how
//     recovery time scales with the un-checkpointed tail.
//
// Results are teed to BENCH_persist.json for cross-PR tracking.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/sampler.h"
#include "persist/env.h"
#include "persist/recovery.h"
#include "persist/snapshot.h"

namespace {

using dpss::persist::DurableOptions;
using dpss::persist::MemEnv;
using dpss::persist::RecoveryManager;

std::unique_ptr<dpss::Sampler> BuildHalt(uint64_t n, dpss::SamplerSpec* spec) {
  spec->seed = 7;
  auto s = dpss::MakeSampler("halt", *spec);
  const auto weights =
      dpss::bench::MakeWeights(n, dpss::bench::WeightDist::kUniform, 11);
  (void)s->InsertBatch(weights, nullptr);
  return s;
}

void BM_SnapshotSave(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  dpss::SamplerSpec spec;
  const auto s = BuildHalt(n, &spec);
  std::string bytes;
  for (auto _ : state) {
    bytes.clear();
    const dpss::Status st = dpss::persist::SaveSampler(*s, spec, &bytes);
    if (!st.ok()) state.SkipWithError("save failed");
    benchmark::DoNotOptimize(bytes.data());
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes.size());
  state.counters["items"] = static_cast<double>(n);
  state.SetBytesProcessed(static_cast<int64_t>(bytes.size()) *
                          state.iterations());
}
BENCHMARK(BM_SnapshotSave)->Range(1 << 10, 1 << 18);

void BM_SnapshotLoad(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  dpss::SamplerSpec spec;
  const auto s = BuildHalt(n, &spec);
  std::string bytes;
  if (!dpss::persist::SaveSampler(*s, spec, &bytes).ok()) {
    state.SkipWithError("save failed");
    return;
  }
  for (auto _ : state) {
    auto loaded = dpss::persist::LoadSampler(bytes);
    if (!loaded.ok()) state.SkipWithError("load failed");
    benchmark::DoNotOptimize(loaded);
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes.size());
  state.counters["items"] = static_cast<double>(n);
  state.SetBytesProcessed(static_cast<int64_t>(bytes.size()) *
                          state.iterations());
}
BENCHMARK(BM_SnapshotLoad)->Range(1 << 10, 1 << 18);

void BM_WalAppend(benchmark::State& state) {
  const uint32_t sync_every = static_cast<uint32_t>(state.range(0));
  MemEnv env;
  DurableOptions opts;
  opts.backend = "halt";
  opts.spec.seed = 7;
  opts.wal_sync_every = sync_every;
  opts.env = &env;
  auto d = RecoveryManager::Open("bench", opts);
  if (!d.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  constexpr uint64_t kItems = 4096;
  std::vector<dpss::ItemId> ids;
  const auto weights = dpss::bench::MakeWeights(
      kItems, dpss::bench::WeightDist::kUniform, 13);
  (void)(*d)->InsertBatch(weights, &ids);
  dpss::RandomEngine rng(17);
  for (auto _ : state) {
    const dpss::Status st = (*d)->SetWeight(
        ids[rng.NextBelow(kItems)], 1 + rng.NextBelow(uint64_t{1} << 16));
    if (!st.ok()) state.SkipWithError("logged update failed");
  }
  state.counters["sync_every"] = sync_every;
  state.counters["wal_bytes"] = static_cast<double>((*d)->wal_bytes());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalAppend)->Arg(1)->Arg(64)->Arg(0);

void BM_Recovery(benchmark::State& state) {
  const uint64_t records = static_cast<uint64_t>(state.range(0));
  // Prepare a directory with a 4096-item snapshot and `records` logged
  // updates, then measure Open (load + replay + rotate) against a clone
  // each iteration — Open itself rotates, so it must see pristine state.
  MemEnv golden;
  {
    DurableOptions opts;
    opts.backend = "halt";
    opts.spec.seed = 7;
    opts.wal_sync_every = 0;
    opts.env = &golden;
    auto d = RecoveryManager::Open("bench", opts);
    if (!d.ok()) {
      state.SkipWithError("prepare failed");
      return;
    }
    constexpr uint64_t kItems = 4096;
    std::vector<dpss::ItemId> ids;
    const auto weights = dpss::bench::MakeWeights(
        kItems, dpss::bench::WeightDist::kUniform, 13);
    (void)(*d)->InsertBatch(weights, &ids);
    if (!(*d)->Checkpoint().ok()) {
      state.SkipWithError("checkpoint failed");
      return;
    }
    dpss::RandomEngine rng(19);
    for (uint64_t i = 0; i < records; ++i) {
      (void)(*d)->SetWeight(ids[rng.NextBelow(kItems)],
                            1 + rng.NextBelow(uint64_t{1} << 16));
    }
    (void)(*d)->SyncWal();
  }
  for (auto _ : state) {
    state.PauseTiming();
    auto env = std::make_unique<MemEnv>();
    env->CloneFrom(golden);
    DurableOptions opts;
    opts.backend = "halt";
    opts.spec.seed = 7;
    opts.env = env.get();
    state.ResumeTiming();
    auto d = RecoveryManager::Open("bench", opts);
    if (!d.ok()) state.SkipWithError("recovery failed");
    benchmark::DoNotOptimize(d);
  }
  state.counters["wal_records"] = static_cast<double>(records);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Recovery)->Arg(0)->Arg(1 << 8)->Arg(1 << 11)->Arg(1 << 14);

}  // namespace

int main(int argc, char** argv) {
  return dpss::bench::RunWithJsonReport(argc, argv, "BENCH_persist.json");
}
