// Shared helpers for the benchmark harness: deterministic weight
// generators and query-parameter calibration.
//
// Calibration note: with β = 0 and α = 1/μ, the expected sample size is
// Σ w/(α·Σw) = μ exactly (as long as no item is individually capped), so
// sweeping μ is just sweeping α — no per-n tuning needed.

#ifndef DPSS_BENCH_BENCH_UTIL_H_
#define DPSS_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <vector>

#include "bigint/rational.h"
#include "util/random.h"

namespace dpss {
namespace bench {

enum class WeightDist { kUniform, kZipf, kExponentialSpread };

inline std::vector<uint64_t> MakeWeights(uint64_t n, WeightDist dist,
                                         uint64_t seed) {
  RandomEngine rng(seed);
  std::vector<uint64_t> w(n);
  switch (dist) {
    case WeightDist::kUniform:
      for (auto& x : w) x = 1 + rng.NextBelow(uint64_t{1} << 20);
      break;
    case WeightDist::kZipf:
      // w_i ~ W_max / rank: heavy head, long tail across ~20 buckets.
      for (uint64_t i = 0; i < n; ++i) {
        w[i] = (uint64_t{1} << 20) / (1 + rng.NextBelow(n)) + 1;
      }
      break;
    case WeightDist::kExponentialSpread:
      // Uniformly random bucket in [0, 40): stresses the group machinery.
      for (auto& x : w) {
        const int e = static_cast<int>(rng.NextBelow(40));
        x = (uint64_t{1} << e) + rng.NextBelow((uint64_t{1} << e));
      }
      break;
  }
  return w;
}

// (α, β) = (1/mu, 0): expected sample size ~= mu (see note above).
inline Rational64 AlphaForMu(uint64_t mu) { return Rational64{1, mu}; }

}  // namespace bench
}  // namespace dpss

#endif  // DPSS_BENCH_BENCH_UTIL_H_
