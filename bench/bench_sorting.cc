// Experiment E6 — the Theorem 1.2 integer-sorting reduction.
//
// Paper claim: an optimal deletion-only DPSS over float weights sorts N
// integers in O(N) expected time. Expected shape: DPSS-sort scales linearly
// in N (ns/item flat), within a constant factor of std::sort (which wins on
// constants; the point is the growth rate, not the crown).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "apps/integer_sort.h"
#include "util/random.h"

namespace {

std::vector<uint64_t> MakeValues(uint64_t n, uint64_t seed) {
  dpss::RandomEngine rng(seed);
  std::vector<uint64_t> v(n);
  for (auto& x : v) x = rng.NextBelow(250);
  return v;
}

void BM_DpssSort(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const auto values = MakeValues(n, 1);
  dpss::IntegerSortStats stats;
  for (auto _ : state) {
    auto sorted = dpss::SortIntegersDescendingViaDpss(values, 2, &stats);
    benchmark::DoNotOptimize(sorted);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["queries_per_item"] =
      static_cast<double>(stats.queries) / static_cast<double>(n);
  state.counters["swaps_per_item"] =
      static_cast<double>(stats.swaps) / static_cast<double>(n);
}
BENCHMARK(BM_DpssSort)->RangeMultiplier(4)->Range(1 << 8, 1 << 15);

void BM_StdSort(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const auto values = MakeValues(n, 1);
  for (auto _ : state) {
    auto copy = values;
    std::sort(copy.rbegin(), copy.rend());
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StdSort)->RangeMultiplier(4)->Range(1 << 8, 1 << 15);

}  // namespace

BENCHMARK_MAIN();
