// Experiments A1/A2 — ablations of HALT design choices (DESIGN.md §6).
//
// A1: lookup table vs per-bucket Bernoulli at the final level. The table
//     replaces O(K) = O(log log log n) exact coins with one O(1) alias draw;
//     at practical n the gap is a constant factor on the dispatch cost of
//     low-μ queries.
// A2: geometric skip vs linear scan over the insignificant instance. The
//     skip is what keeps sub-μ queries O(1); the linear scan degrades them
//     to Θ(#insignificant items) — the dominant cost when β is large.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/dpss_sampler.h"

namespace {

constexpr uint64_t kN = 1 << 16;

void RunQueryBench(benchmark::State& state, bool use_table, bool linear_scan,
                   dpss::Rational64 alpha, dpss::Rational64 beta,
                   uint64_t seed) {
  const auto weights = dpss::bench::MakeWeights(
      kN, dpss::bench::WeightDist::kExponentialSpread, seed);
  dpss::DpssSampler s(weights, seed + 1);
  s.SetUseLookupTable(use_table);
  s.SetInsignificantLinearScan(linear_scan);
  dpss::RandomEngine rng(seed + 2);
  for (auto _ : state) {
    auto t = s.Sample(alpha, beta, rng);
    benchmark::DoNotOptimize(t);
  }
  state.counters["mu"] = s.ExpectedSampleSize(alpha, beta);
}

// A1 at moderate μ: the final-level path runs on most queries.
void BM_A1_WithLookupTable(benchmark::State& state) {
  RunQueryBench(state, true, false, dpss::bench::AlphaForMu(4), {0, 1}, 10);
}
BENCHMARK(BM_A1_WithLookupTable);

void BM_A1_DirectFinalLevel(benchmark::State& state) {
  RunQueryBench(state, false, false, dpss::bench::AlphaForMu(4), {0, 1}, 10);
}
BENCHMARK(BM_A1_DirectFinalLevel);

// A2 at tiny μ: almost every item is insignificant.
void BM_A2_GeometricSkip(benchmark::State& state) {
  RunQueryBench(state, true, false, {0, 1}, {uint64_t{1} << 50, 1}, 20);
}
BENCHMARK(BM_A2_GeometricSkip);

void BM_A2_LinearScan(benchmark::State& state) {
  RunQueryBench(state, true, true, {0, 1}, {uint64_t{1} << 50, 1}, 20);
}
BENCHMARK(BM_A2_LinearScan);

// A2 at moderate μ: the scan also pays on ordinary queries.
void BM_A2_GeometricSkipMu8(benchmark::State& state) {
  RunQueryBench(state, true, false, dpss::bench::AlphaForMu(8), {0, 1}, 30);
}
BENCHMARK(BM_A2_GeometricSkipMu8);

void BM_A2_LinearScanMu8(benchmark::State& state) {
  RunQueryBench(state, true, true, dpss::bench::AlphaForMu(8), {0, 1}, 30);
}
BENCHMARK(BM_A2_LinearScanMu8);

}  // namespace

BENCHMARK_MAIN();
