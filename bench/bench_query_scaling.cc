// Experiment E1 — query time vs n at fixed expected output size.
//
// Paper claim (Theorem 1.1): HALT answers a PSS query in O(1 + μ) expected
// time, independent of n. The naive sampler is Θ(n) per query; the
// bucket-jump (DSS-style) sampler is O(#buckets + μ) but must be rebuilt
// for each W, so here it is benchmarked in its best case (prebuilt, fixed
// W) as a lower-bound reference.
//
// Expected shape: HALT flat in n; Naive linear in n; crossover at small n.

#include <benchmark/benchmark.h>

#include "baseline/bucket_jump.h"
#include "baseline/naive_dpss.h"
#include "baseline/odss.h"
#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/dpss_sampler.h"

namespace {

constexpr uint64_t kMu = 8;

void BM_HaltQuery(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const auto weights =
      dpss::bench::MakeWeights(n, dpss::bench::WeightDist::kUniform, 1);
  dpss::DpssSampler s(weights, 2);
  dpss::RandomEngine rng(3);
  const dpss::Rational64 alpha = dpss::bench::AlphaForMu(kMu);
  std::vector<dpss::DpssSampler::ItemId> out;
  uint64_t out_items = 0;
  for (auto _ : state) {
    s.SampleInto(alpha, {0, 1}, rng, &out);
    out_items += out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["mu"] =
      static_cast<double>(out_items) / static_cast<double>(state.iterations());
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_HaltQuery)->RangeMultiplier(4)->Range(1 << 10, 1 << 20);

void BM_HaltQueryZipf(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const auto weights =
      dpss::bench::MakeWeights(n, dpss::bench::WeightDist::kZipf, 4);
  dpss::DpssSampler s(weights, 5);
  dpss::RandomEngine rng(6);
  const dpss::Rational64 alpha = dpss::bench::AlphaForMu(kMu);
  std::vector<dpss::DpssSampler::ItemId> out;
  uint64_t out_items = 0;
  for (auto _ : state) {
    s.SampleInto(alpha, {0, 1}, rng, &out);
    out_items += out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["mu"] =
      static_cast<double>(out_items) / static_cast<double>(state.iterations());
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_HaltQueryZipf)->RangeMultiplier(4)->Range(1 << 10, 1 << 20);

void BM_HaltQueryExpSpread(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const auto weights = dpss::bench::MakeWeights(
      n, dpss::bench::WeightDist::kExponentialSpread, 7);
  dpss::DpssSampler s(weights, 8);
  dpss::RandomEngine rng(9);
  const dpss::Rational64 alpha = dpss::bench::AlphaForMu(kMu);
  std::vector<dpss::DpssSampler::ItemId> out;
  for (auto _ : state) {
    s.SampleInto(alpha, {0, 1}, rng, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_HaltQueryExpSpread)->RangeMultiplier(4)->Range(1 << 10, 1 << 20);

void BM_NaiveQueryExact(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const auto weights =
      dpss::bench::MakeWeights(n, dpss::bench::WeightDist::kUniform, 1);
  dpss::NaiveDpss s(weights, /*exact=*/true);
  dpss::RandomEngine rng(10);
  const dpss::Rational64 alpha = dpss::bench::AlphaForMu(kMu);
  for (auto _ : state) {
    auto t = s.Sample(alpha, {0, 1}, rng);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_NaiveQueryExact)->RangeMultiplier(4)->Range(1 << 10, 1 << 16);

void BM_NaiveQueryFast(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const auto weights =
      dpss::bench::MakeWeights(n, dpss::bench::WeightDist::kUniform, 1);
  dpss::NaiveDpss s(weights, /*exact=*/false);
  dpss::RandomEngine rng(11);
  const dpss::Rational64 alpha = dpss::bench::AlphaForMu(kMu);
  for (auto _ : state) {
    auto t = s.Sample(alpha, {0, 1}, rng);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_NaiveQueryFast)->RangeMultiplier(4)->Range(1 << 10, 1 << 18);

void BM_BucketJumpQueryFixedW(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const auto weights =
      dpss::bench::MakeWeights(n, dpss::bench::WeightDist::kUniform, 1);
  // Prebuild for the fixed W of this (α, β) — the DSS best case.
  dpss::DpssSampler helper(weights, 12);
  dpss::BigUInt wnum, wden;
  helper.ComputeW(dpss::bench::AlphaForMu(kMu), {0, 1}, &wnum, &wden);
  dpss::BucketJumpSampler s;
  for (size_t i = 0; i < weights.size(); ++i) {
    s.Insert(i, dpss::BigUInt::MulU64(wden, weights[i]), wnum);
  }
  dpss::RandomEngine rng(13);
  for (auto _ : state) {
    auto t = s.Sample(rng);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_BucketJumpQueryFixedW)->RangeMultiplier(4)->Range(1 << 10, 1 << 20);

void BM_OdssQueryFixedW(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const auto weights =
      dpss::bench::MakeWeights(n, dpss::bench::WeightDist::kUniform, 1);
  dpss::DpssSampler helper(weights, 14);
  dpss::BigUInt wnum, wden;
  helper.ComputeW(dpss::bench::AlphaForMu(kMu), {0, 1}, &wnum, &wden);
  dpss::OdssSampler s;
  for (size_t i = 0; i < weights.size(); ++i) {
    s.Insert(i, dpss::BigUInt::MulU64(wden, weights[i]), wnum);
  }
  dpss::RandomEngine rng(15);
  for (auto _ : state) {
    auto t = s.Sample(rng);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_OdssQueryFixedW)->RangeMultiplier(4)->Range(1 << 10, 1 << 20);

}  // namespace

int main(int argc, char** argv) {
  return dpss::bench::RunWithJsonReport(argc, argv,
                                        "BENCH_query_scaling.json");
}
