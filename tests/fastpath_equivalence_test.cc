// Fast-path/slow-path equivalence: the u128 small-integer layer must be a
// perfect value-level mirror of the exact BigUInt arithmetic — same random
// bits consumed, same samples returned — so that operand-width dispatch is
// provably invisible to the output distribution. These tests drive both
// paths from identical RandomEngine seeds and assert *identical* sample
// sequences, then validate the realized per-item inclusion frequencies
// against exact p_x(α, β) with a chi-square gate.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "bigint/rational.h"
#include "bigint/u128.h"
#include "core/dpss_sampler.h"
#include "random/approx.h"
#include "random/bernoulli.h"
#include "random/geometric.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace dpss {
namespace {

using testing_util::ExpectFrequencyGate;

// --- Primitive-level mirrors ----------------------------------------------

TEST(FastPathPrimitives, RationalCoinMatchesBigUInt) {
  RandomEngine rng_fast(71), rng_slow(71);
  RandomEngine vals(5);
  for (int trial = 0; trial < 5000; ++trial) {
    const int den_bits = 1 + static_cast<int>(vals.NextBelow(128));
    U128 den = 0;
    for (int got = 0; got < den_bits; got += 64) {
      const int take = den_bits - got >= 64 ? 64 : den_bits - got;
      den = (den << take) | vals.NextBits(take);
    }
    den |= static_cast<U128>(1) << (den_bits - 1);
    const U128 num = RandomBigBelow(den, vals);  // in [0, den)
    const bool fast = SampleBernoulliRational(num, den, rng_fast);
    const bool slow = SampleBernoulliRational(BigUInt::FromU128(num),
                                              BigUInt::FromU128(den), rng_slow);
    ASSERT_EQ(fast, slow) << "trial " << trial;
  }
}

TEST(FastPathPrimitives, PowCoinMatchesBigUInt) {
  RandomEngine rng_fast(72), rng_slow(72);
  RandomEngine vals(6);
  for (int trial = 0; trial < 3000; ++trial) {
    const int den_bits = 2 + static_cast<int>(vals.NextBelow(127));
    U128 den = (static_cast<U128>(1) << (den_bits - 1)) |
               RandomBigBelow(static_cast<U128>(1) << (den_bits - 1), vals);
    const U128 num = RandomBigBelow(den, vals);  // in [0, den)
    const uint64_t m = 1 + vals.NextBelow(uint64_t{1} << 40);
    const bool fast = SampleBernoulliPow(num, den, m, rng_fast);
    const bool slow = SampleBernoulliPow(BigUInt::FromU128(num),
                                         BigUInt::FromU128(den), m, rng_slow);
    ASSERT_EQ(fast, slow) << "trial " << trial;
  }
}

TEST(FastPathPrimitives, GeometricVariatesMatchBigUInt) {
  RandomEngine rng_fast(73), rng_slow(73);
  RandomEngine vals(7);
  for (int trial = 0; trial < 3000; ++trial) {
    const int den_bits = 2 + static_cast<int>(vals.NextBelow(127));
    const U128 den = (static_cast<U128>(1) << (den_bits - 1)) |
                     RandomBigBelow(static_cast<U128>(1) << (den_bits - 1),
                                    vals);
    const U128 num = 1 + RandomBigBelow(den, vals);
    const uint64_t n = 1 + vals.NextBelow(1 << 16);
    const BigUInt bnum = BigUInt::FromU128(num);
    const BigUInt bden = BigUInt::FromU128(den);
    ASSERT_EQ(SampleBoundedGeo(num, den, n, rng_fast),
              SampleBoundedGeo(bnum, bden, n, rng_slow))
        << "B-Geo trial " << trial;
    ASSERT_EQ(SampleTruncatedGeo(num, den, n, rng_fast),
              SampleTruncatedGeo(bnum, bden, n, rng_slow))
        << "T-Geo trial " << trial;
  }
}

TEST(FastPathPrimitives, PStarCoinMatchesBigUInt) {
  RandomEngine rng_fast(74), rng_slow(74);
  RandomEngine vals(8);
  for (int trial = 0; trial < 3000; ++trial) {
    // Preconditions: n >= 1, n·q <= 1. Pick q <= 1/n with wide operands.
    const uint64_t n = 1 + vals.NextBelow(1 << 12);
    const int den_bits = 40 + static_cast<int>(vals.NextBelow(89));
    const U128 den = (static_cast<U128>(1) << (den_bits - 1)) |
                     RandomBigBelow(static_cast<U128>(1) << (den_bits - 1),
                                    vals);
    const U128 num = 1 + RandomBigBelow(den / n, vals);
    const bool fast = SampleBernoulliPStar(num, den, n, rng_fast);
    const bool slow = SampleBernoulliPStar(BigUInt::FromU128(num),
                                           BigUInt::FromU128(den), n, rng_slow);
    ASSERT_EQ(fast, slow) << "trial " << trial;
  }
}

TEST(FastPathPrimitives, PowEnclosureMatchesBigUIntOracle) {
  // The first-rung enclosure must match ApproxPow bit for bit — otherwise
  // the ambiguity fallback would diverge from the canonical stream.
  RandomEngine vals(9);
  for (int trial = 0; trial < 2000; ++trial) {
    const int den_bits = 2 + static_cast<int>(vals.NextBelow(127));
    const U128 den = (static_cast<U128>(1) << (den_bits - 1)) |
                     RandomBigBelow(static_cast<U128>(1) << (den_bits - 1),
                                    vals);
    U128 num = RandomBigBelow(den, vals);
    if (num == 0) num = den - 1;
    if (num == 0) continue;
    const uint64_t m = 2 + vals.NextBelow(uint64_t{1} << 50);
    const SmallInterval small = ApproxPowSmall(num, den, m, 18);
    const FixedInterval big = ApproxPow(BigUInt::FromU128(num),
                                        BigUInt::FromU128(den), m, 18);
    ASSERT_EQ(small.frac_bits, big.frac_bits) << "trial " << trial;
    ASSERT_EQ(BigUInt(small.lo), big.lo) << "trial " << trial;
    ASSERT_EQ(BigUInt(small.hi), big.hi) << "trial " << trial;
  }
}

// --- Whole-structure equivalence ------------------------------------------

std::vector<uint64_t> MixedWeights(uint64_t n, uint64_t seed) {
  RandomEngine rng(seed);
  std::vector<uint64_t> w(n);
  for (auto& x : w) x = 1 + rng.NextBelow(uint64_t{1} << 20);
  return w;
}

void RunEquivalence(bool float_weights, uint64_t seed) {
  const uint64_t n = 2048;
  const auto weights = MixedWeights(n, seed);
  DpssSampler fast(weights, seed + 1);
  DpssSampler slow(weights, seed + 1);
  slow.SetForceBigIntArithmetic(true);
  if (float_weights) {
    // Add float-form weights mult·2^exp with exponents chosen to straddle
    // the u128 dispatch guards (some per-item numerators overflow 128 bits
    // and must take the bit-identical BigUInt fallback).
    RandomEngine wrng(seed + 2);
    for (int i = 0; i < 256; ++i) {
      const uint64_t mult = 1 + wrng.NextBelow(uint64_t{1} << 18);
      const uint32_t exp = static_cast<uint32_t>(wrng.NextBelow(100));
      fast.InsertWeight(Weight(mult, exp));
      slow.InsertWeight(Weight(mult, exp));
    }
  }

  const Rational64 params[][2] = {
      {{1, 1}, {0, 1}},                       // μ ≈ 1 per unit: α = 1
      {{1, 2}, {0, 1}},                       // W = Σw/2
      {{1, 64}, {0, 1}},                      // μ ≈ 64
      {{1, 1024}, {0, 1}},                    // μ ≈ 1024
      {{1, uint64_t{1} << 35}, {0, 1}},       // wide wden: mixed dispatch
      {{0, 1}, {uint64_t{1} << 45, 1}},       // pure-β
      {{3, 7}, {11, 13}},                     // awkward rationals
      {{0, 1}, {0, 1}},                       // W == 0: select everything
  };
  for (const auto& p : params) {
    RandomEngine rng_fast(seed + 10), rng_slow(seed + 10);
    for (int q = 0; q < 40; ++q) {
      const auto a = fast.Sample(p[0], p[1], rng_fast);
      const auto b = slow.Sample(p[0], p[1], rng_slow);
      ASSERT_EQ(a, b) << "α=" << p[0].num << "/" << p[0].den
                      << " β=" << p[1].num << "/" << p[1].den << " query " << q;
    }
  }

  // Interleave updates and re-check (exercises rebuilds keeping the flag).
  RandomEngine urng(seed + 3);
  for (int i = 0; i < 512; ++i) {
    const uint64_t w = 1 + urng.NextBelow(uint64_t{1} << 16);
    fast.Insert(w);
    slow.Insert(w);
  }
  RandomEngine rng_fast(seed + 20), rng_slow(seed + 20);
  for (int q = 0; q < 40; ++q) {
    const auto a = fast.Sample({1, 32}, {0, 1}, rng_fast);
    const auto b = slow.Sample({1, 32}, {0, 1}, rng_slow);
    ASSERT_EQ(a, b) << "post-update query " << q;
  }
}

TEST(FastPathEquivalence, U64WeightWorkload) { RunEquivalence(false, 101); }

TEST(FastPathEquivalence, MixedFloatWeightWorkload) {
  RunEquivalence(true, 202);
}

TEST(FastPathEquivalence, SampleIntoMatchesSample) {
  const auto weights = MixedWeights(4096, 33);
  DpssSampler s(weights, 34);
  RandomEngine rng_a(35), rng_b(35);
  std::vector<DpssSampler::ItemId> buf;
  for (int q = 0; q < 200; ++q) {
    s.SampleInto({1, 16}, {0, 1}, rng_a, &buf);
    const auto expect = s.Sample({1, 16}, {0, 1}, rng_b);
    ASSERT_EQ(buf, expect) << "query " << q;
  }
}

// --- Block-RNG equivalence ------------------------------------------------
//
// The block layer must be invisible to the random stream: PrefetchWords only
// moves where the recurrence runs, never which word a draw observes. These
// tests pin that down at the engine level and through whole queries.

TEST(BlockRngEquivalence, PrefetchedWordStreamIsIdentical) {
  RandomEngine plain(911), blocked(911);
  RandomEngine ctrl(912);
  for (int step = 0; step < 50000; ++step) {
    // Interleave prefetch hints of arbitrary depth — including repeated and
    // overlapping ones — with every draw shape the engine offers.
    if (ctrl.NextBelow(3) == 0) {
      blocked.PrefetchWords(1 + static_cast<int>(ctrl.NextBelow(100)));
    }
    switch (ctrl.NextBelow(3)) {
      case 0:
        ASSERT_EQ(plain.NextWord(), blocked.NextWord()) << "step " << step;
        break;
      case 1: {
        const int bits = static_cast<int>(ctrl.NextBelow(65));
        ASSERT_EQ(plain.NextBits(bits), blocked.NextBits(bits))
            << "step " << step;
        break;
      }
      default: {
        const uint64_t bound = 1 + ctrl.NextBelow(uint64_t{1} << 40);
        ASSERT_EQ(plain.NextBelow(bound), blocked.NextBelow(bound))
            << "step " << step;
      }
    }
  }
  // Reseeding discards buffered words: both engines restart in lockstep.
  blocked.PrefetchWords(64);
  plain.Seed(913);
  blocked.Seed(913);
  EXPECT_EQ(plain.NextWord(), blocked.NextWord());
}

// Whole-structure lockstep: a sampler with the block-RNG hot path enabled
// (the default) against a twin with it disabled must return identical sample
// sequences from identical seeds, at every μ and across mid-stream BigUInt
// fallbacks (float weights past the u128 guards).
void RunBlockRngEquivalence(bool float_weights, uint64_t seed) {
  const uint64_t n = 2048;
  const auto weights = MixedWeights(n, seed);
  DpssSampler blocked(weights, seed + 1);
  DpssSampler scalar(weights, seed + 1);
  scalar.SetUseBlockRng(false);
  if (float_weights) {
    RandomEngine wrng(seed + 2);
    for (int i = 0; i < 256; ++i) {
      const uint64_t mult = 1 + wrng.NextBelow(uint64_t{1} << 18);
      const uint32_t exp = static_cast<uint32_t>(wrng.NextBelow(120));
      blocked.InsertWeight(Weight(mult, exp));
      scalar.InsertWeight(Weight(mult, exp));
    }
  }
  for (const uint64_t mu : {uint64_t{1}, uint64_t{32}, uint64_t{1024}}) {
    RandomEngine rng_blocked(seed + 10 + mu), rng_scalar(seed + 10 + mu);
    for (int q = 0; q < 40; ++q) {
      const auto a = blocked.Sample({1, mu}, {0, 1}, rng_blocked);
      const auto b = scalar.Sample({1, mu}, {0, 1}, rng_scalar);
      ASSERT_EQ(a, b) << "mu=" << mu << " query " << q;
      // The block path may leave words buffered; the scalar path must not.
      ASSERT_EQ(rng_scalar.BufferedWords(), 0) << "mu=" << mu;
    }
  }
  // The flag must survive rebuilds triggered by update churn.
  RandomEngine urng(seed + 3);
  for (int i = 0; i < 3000; ++i) {
    const uint64_t w = 1 + urng.NextBelow(uint64_t{1} << 16);
    blocked.Insert(w);
    scalar.Insert(w);
  }
  RandomEngine rng_blocked(seed + 20), rng_scalar(seed + 20);
  for (int q = 0; q < 40; ++q) {
    const auto a = blocked.Sample({1, 32}, {0, 1}, rng_blocked);
    const auto b = scalar.Sample({1, 32}, {0, 1}, rng_scalar);
    ASSERT_EQ(a, b) << "post-update query " << q;
  }
}

TEST(BlockRngEquivalence, U64WeightWorkload) {
  RunBlockRngEquivalence(false, 301);
}

TEST(BlockRngEquivalence, MixedFloatWeightWorkload) {
  RunBlockRngEquivalence(true, 402);
}

// --- Distributional acceptance --------------------------------------------

// Chi-square over realized per-item inclusion counts vs exact p_x(α, β),
// on a mixed u64/float-weight workload driven through the fast path.
// Weights are kept within a few octaves of each other so every uncapped
// item's expected hit count is far above the chi-square small-cell limit.
TEST(FastPathDistribution, ChiSquareOverItemInclusion) {
  DpssSampler s(77);
  std::vector<Weight> item_weights;
  RandomEngine wrng(78);
  for (int i = 0; i < 36; ++i) {
    const uint64_t w =
        (uint64_t{1} << 12) + wrng.NextBelow(uint64_t{1} << (13 + i % 7));
    s.Insert(w);
    item_weights.push_back(Weight::FromU64(w));
  }
  // Float-form weights, several large enough to cap at p_x = 1.
  for (int i = 0; i < 8; ++i) {
    const uint64_t mult = 1 + wrng.NextBelow(1 << 6);
    const uint32_t exp = 12 + static_cast<uint32_t>(i % 6) + (i >= 6 ? 8 : 0);
    s.InsertWeight(Weight(mult, exp));
    item_weights.push_back(Weight(mult, exp));
  }

  const Rational64 alpha{1, 8};
  const Rational64 beta{0, 1};
  BigUInt wnum, wden;
  s.ComputeW(alpha, beta, &wnum, &wden);
  const double w_total = BigRational(wnum, wden).ToDouble();

  const uint64_t kTrials = 40000;
  std::vector<uint64_t> hits(item_weights.size(), 0);
  std::vector<DpssSampler::ItemId> buf;
  RandomEngine rng(79);
  for (uint64_t t = 0; t < kTrials; ++t) {
    s.SampleInto(alpha, beta, rng, &buf);
    for (const auto id : buf) {
      ASSERT_LT(id, item_weights.size());
      ++hits[id];
    }
  }

  // The shared frequency gate (tests/statistical.h): items with p_x >= 1
  // — decided exactly in integer arithmetic, not in floating point, hence
  // the BigUInt comparison to mark them — must be hit every single time;
  // uncapped items face per-item z-scores plus the pooled chi-square.
  std::vector<double> probs(item_weights.size());
  for (size_t i = 0; i < item_weights.size(); ++i) {
    const BigUInt w_scaled =
        BigUInt::MulU64(wden, item_weights[i].mult)
        << static_cast<int>(item_weights[i].exp);
    if (BigUInt::Compare(w_scaled, wnum) >= 0) {
      probs[i] = 1.0;  // capped: the gate requires a hit on every trial
      continue;
    }
    probs[i] = item_weights[i].ToDouble() / w_total;
    ASSERT_GT(probs[i] * static_cast<double>(kTrials),
              testing_util::kMinExpectedCell)
        << "test design: cell " << i << " too small";
  }
  testing_util::ExpectFrequencyGate(hits, kTrials, probs, 4.75,
                                    "fastpath-distribution");
}

}  // namespace
}  // namespace dpss
