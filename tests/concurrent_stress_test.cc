// Concurrency stress for the sharded sampler: N writer threads doing
// interleaved Insert/Erase/SetWeight race against M sampler threads doing
// queries and read-path accessors. The test is the TSan target for the
// concurrent subsystem (the CI tsan job runs it under -fsanitize=thread)
// and also runs under the plain and ASan/UBSan jobs.
//
// Correctness gates, all on the frozen structure after the race:
//   * CheckInvariants() — inner structures plus the wrapper's cached
//     totals, live counters and seqlock-published values;
//   * exact bookkeeping — size() and TotalWeight() must equal what the
//     writers' op logs imply;
//   * a chi-square frequency gate — the post-race sampler must still
//     produce exactly-weighted samples (per-item marginals w/Σw under
//     (α, β) = (1, 0)).

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/sampler.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace dpss {
namespace {

using testing_util::ChiSquare;
using testing_util::ChiSquareGate;

constexpr Rational64 kAlpha{1, 1};
constexpr Rational64 kBeta{0, 1};

// One stress configuration: a sharded backend plus the width of the
// per-query parallel-drain pool (>= 2 builds a ThreadPool inside the
// sampler, so the pooled drain path gets raced and TSan-checked too).
struct StressConfig {
  const char* backend;
  int drain_threads;
};

class ConcurrentStressTest
    : public ::testing::TestWithParam<StressConfig> {};

TEST_P(ConcurrentStressTest, WritersAndSamplersRace) {
  SamplerSpec spec;
  spec.seed = 99;
  spec.num_shards = 8;
  spec.num_threads = GetParam().drain_threads;
  std::unique_ptr<Sampler> s = MakeSampler(GetParam().backend, spec);
  ASSERT_NE(s, nullptr);

  // Anchor items no writer ever touches: their final weights are known, so
  // the frozen chi-square below has a stable backbone.
  std::vector<ItemId> anchor_ids;
  RandomEngine init(5);
  for (int i = 0; i < 48; ++i) {
    const StatusOr<ItemId> id = s->Insert(1 + init.NextBelow(1 << 10));
    ASSERT_TRUE(id.ok());
    anchor_ids.push_back(*id);
  }

  constexpr int kWriters = 4;
  constexpr int kSamplers = 4;
  constexpr int kOpsPerWriter = 1200;
  constexpr size_t kMaxOwned = 24;

  std::atomic<bool> stop{false};
  std::vector<std::vector<ItemId>> final_live(kWriters);
  std::vector<std::thread> threads;

  // Writers mutate only ids they themselves inserted, so every op must
  // succeed: any non-OK status here is a real interleaving bug, not
  // expected contention fallout.
  for (int wi = 0; wi < kWriters; ++wi) {
    threads.emplace_back([&, wi] {
      RandomEngine rng(1000 + static_cast<uint64_t>(wi));
      std::vector<ItemId> mine;
      for (int op = 0; op < kOpsPerWriter; ++op) {
        const uint64_t r = rng.NextBelow(10);
        if (mine.size() < 4 || (r < 4 && mine.size() < kMaxOwned)) {
          const StatusOr<ItemId> id = s->Insert(1 + rng.NextBelow(1 << 10));
          EXPECT_TRUE(id.ok());
          if (id.ok()) mine.push_back(*id);
        } else if (r < 7) {
          const size_t i = rng.NextBelow(mine.size());
          EXPECT_TRUE(s->Erase(mine[i]).ok());
          mine[i] = mine.back();
          mine.pop_back();
        } else {
          const size_t i = rng.NextBelow(mine.size());
          EXPECT_TRUE(s->SetWeight(mine[i], rng.NextBelow(1 << 10)).ok());
        }
      }
      final_live[wi] = mine;
    });
  }

  // Samplers hammer the query path (which takes each shard's writer lock)
  // and the reader-locked / lock-free accessors. Sampled ids may be stale
  // by the time they are re-checked — that must degrade to an error
  // status, never a crash or a torn read.
  for (int si = 0; si < kSamplers; ++si) {
    threads.emplace_back([&] {
      std::vector<ItemId> out;
      while (!stop.load(std::memory_order_relaxed)) {
        EXPECT_TRUE(s->SampleInto(kAlpha, kBeta, &out).ok());
        for (const ItemId id : out) {
          // The id may be stale — or its weight already parked to 0 — by
          // the time of this re-check; both are legitimate interleavings.
          // What matters is that the lookup itself is safe under the race.
          (void)s->GetWeight(id);
        }
        (void)s->TotalWeight();
        (void)s->size();
      }
    });
  }

  for (int wi = 0; wi < kWriters; ++wi) threads[wi].join();
  stop.store(true, std::memory_order_relaxed);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  // --- Frozen snapshot: exact bookkeeping --------------------------------
  EXPECT_TRUE(s->CheckInvariants().ok());

  std::vector<ItemId> live_ids = anchor_ids;
  for (const auto& mine : final_live) {
    live_ids.insert(live_ids.end(), mine.begin(), mine.end());
  }
  EXPECT_EQ(s->size(), live_ids.size());

  unsigned __int128 model_total = 0;
  std::vector<uint64_t> weights(live_ids.size());
  for (size_t i = 0; i < live_ids.size(); ++i) {
    const StatusOr<Weight> w = s->GetWeight(live_ids[i]);
    ASSERT_TRUE(w.ok());
    ASSERT_EQ(w->exp, 0u);
    weights[i] = w->mult;
    model_total += w->mult;
  }
  EXPECT_EQ(s->TotalWeight(), BigUInt::FromU128(model_total));

  // --- Frozen snapshot: chi-square frequency gate ------------------------
  std::unordered_map<ItemId, size_t> index;
  for (size_t i = 0; i < live_ids.size(); ++i) index[live_ids[i]] = i;
  const double total = static_cast<double>(model_total);
  ASSERT_GT(total, 0.0);

  RandomEngine rng(777);
  const uint64_t trials = 30000;
  std::vector<uint64_t> hits(live_ids.size(), 0);
  std::vector<ItemId> out;
  for (uint64_t t = 0; t < trials; ++t) {
    ASSERT_TRUE(s->SampleInto(kAlpha, kBeta, rng, &out).ok());
    for (const ItemId id : out) {
      const auto it = index.find(id);
      ASSERT_NE(it, index.end()) << "sampled an id that is not live";
      ++hits[it->second];
    }
  }
  std::vector<double> probs(live_ids.size());
  for (size_t i = 0; i < live_ids.size(); ++i) {
    probs[i] = static_cast<double>(weights[i]) / total;
  }
  int dof = 0;
  const double chi = ChiSquare(hits, probs, trials, &dof);
  EXPECT_LE(chi, ChiSquareGate(dof)) << GetParam().backend;
}

INSTANTIATE_TEST_SUITE_P(
    Sharded, ConcurrentStressTest,
    ::testing::Values(StressConfig{"sharded:halt", 1},
                      StressConfig{"sharded4:naive", 1},
                      StressConfig{"sharded:halt", 3}),
    [](const ::testing::TestParamInfo<StressConfig>& info) {
      return testing_util::GTestNameFromBackend(info.param.backend) +
             "_drain" + std::to_string(info.param.drain_threads);
    });

}  // namespace
}  // namespace dpss
