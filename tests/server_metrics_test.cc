// Unit tests for the serving metrics (server/metrics.h): log-bucket
// boundary math, cross-core merge, the documented quantile error bound
// (≤ one bucket width, i.e. ≤ 25% of the value), and the stability of the
// exported JSON schema that dashboards and tools parse.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "server/metrics.h"
#include "util/random.h"

namespace dpss {
namespace server {
namespace {

// --- Bucket math ----------------------------------------------------------

TEST(ServerMetricsTest, BucketBoundsPartitionTheValueLine) {
  // Bucket bounds must tile [0, 2^63) without gaps or overlaps: each
  // bucket's lower bound is the previous bucket's upper bound + 1.
  for (int i = 1; i < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(i),
              LatencyHistogram::BucketUpperBound(i - 1) + 1)
        << "gap/overlap between buckets " << i - 1 << " and " << i;
  }
  EXPECT_EQ(LatencyHistogram::BucketLowerBound(0), 0u);
}

TEST(ServerMetricsTest, BucketIndexMatchesBounds) {
  // Every bucket's own bounds map back to it, for the whole table.
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(
                  LatencyHistogram::BucketLowerBound(i)),
              i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(
                  LatencyHistogram::BucketUpperBound(i)),
              i);
  }
  // Spot values.
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0);
  EXPECT_EQ(LatencyHistogram::BucketIndex(3), 3);
  EXPECT_EQ(LatencyHistogram::BucketIndex(4), 4);
  // Huge values clamp into the last bucket instead of indexing out of
  // bounds.
  EXPECT_EQ(LatencyHistogram::BucketIndex(~uint64_t{0}),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(ServerMetricsTest, BucketWidthIsAtMostQuarterOfLowerBound) {
  // The quantile error bound rests on this: for v >= 4 the bucket width is
  // 2^(o-2), at most 25% of the bucket's lower bound.
  for (int i = 4; i < LatencyHistogram::kNumBuckets; ++i) {
    const uint64_t lo = LatencyHistogram::BucketLowerBound(i);
    const uint64_t hi = LatencyHistogram::BucketUpperBound(i);
    EXPECT_LE(hi - lo + 1, lo / 4 + (lo % 4 != 0))
        << "bucket " << i << " [" << lo << ", " << hi << "]";
  }
}

// --- Quantile error bound -------------------------------------------------

TEST(ServerMetricsTest, QuantileErrorWithinOneBucketWidth) {
  RandomEngine rng(0x9151);
  // A log-uniform-ish workload: values spanning 6 orders of magnitude.
  std::vector<uint64_t> values;
  LatencyHistogram hist;
  for (int i = 0; i < 20000; ++i) {
    const int octave = static_cast<int>(rng.NextBelow(20));
    const uint64_t v = (uint64_t{1} << octave) + rng.NextBits(octave);
    values.push_back(v);
    hist.Record(v);
  }
  std::sort(values.begin(), values.end());
  HistogramSnapshot snap;
  hist.AccumulateInto(snap.buckets());
  ASSERT_EQ(snap.count(), values.size());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    uint64_t rank = static_cast<uint64_t>(q * values.size());
    if (rank == 0) rank = 1;
    const uint64_t exact = values[rank - 1];
    const uint64_t est = snap.ValueAtQuantile(q);
    // The estimate is the upper bound of the exact value's bucket: it can
    // only overshoot, by strictly less than one bucket width.
    const int bucket = LatencyHistogram::BucketIndex(exact);
    const uint64_t width = LatencyHistogram::BucketUpperBound(bucket) -
                           LatencyHistogram::BucketLowerBound(bucket) + 1;
    EXPECT_GE(est, exact) << "q=" << q;
    EXPECT_LE(est - exact, width) << "q=" << q;
    // And the relative form the file comment promises: <= 25%.
    EXPECT_LE(static_cast<double>(est - exact),
              0.25 * static_cast<double>(exact) + 1.0)
        << "q=" << q;
  }
}

TEST(ServerMetricsTest, QuantileEdgeCases) {
  HistogramSnapshot empty;
  EXPECT_EQ(empty.ValueAtQuantile(0.5), 0u);
  EXPECT_EQ(empty.Mean(), 0.0);

  LatencyHistogram one;
  one.Record(100);
  HistogramSnapshot snap;
  one.AccumulateInto(snap.buckets());
  EXPECT_EQ(snap.count(), 1u);
  // All quantiles of a single sample land in its bucket.
  const int b = LatencyHistogram::BucketIndex(100);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(snap.ValueAtQuantile(q), LatencyHistogram::BucketUpperBound(b));
  }
}

// --- Merge across cores ---------------------------------------------------

TEST(ServerMetricsTest, MergeAcrossCoresEqualsSingleHistogram) {
  RandomEngine rng(0x4242);
  MetricsRegistry registry(4);
  LatencyHistogram reference;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextBelow(1 << 20);
    const int core = static_cast<int>(rng.NextBelow(4));
    registry.core(core).op_latency_ns[0].Record(v);
    reference.Record(v);
  }
  HistogramSnapshot merged;
  for (int c = 0; c < 4; ++c) {
    registry.core(c).op_latency_ns[0].AccumulateInto(merged.buckets());
  }
  HistogramSnapshot ref;
  reference.AccumulateInto(ref.buckets());
  ASSERT_EQ(merged.count(), ref.count());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(merged.ValueAtQuantile(q), ref.ValueAtQuantile(q)) << q;
  }
  EXPECT_DOUBLE_EQ(merged.Mean(), ref.Mean());
}

TEST(ServerMetricsTest, ResetZeroesEveryBucket) {
  LatencyHistogram h;
  for (uint64_t v : {1u, 100u, 10000u}) h.Record(v);
  h.Reset();
  HistogramSnapshot snap;
  h.AccumulateInto(snap.buckets());
  EXPECT_EQ(snap.count(), 0u);
}

// --- JSON schema stability ------------------------------------------------

TEST(ServerMetricsTest, JsonSchemaKeysAreStable) {
  MetricsRegistry registry(2);
  registry.core(0).bytes_in.store(100);
  registry.core(1).bytes_in.store(23);
  registry.core(0).shed.store(7);
  registry.core(0).op_count[static_cast<int>(OpKind::kSample)].store(5);
  registry.core(0)
      .op_latency_ns[static_cast<int>(OpKind::kSample)]
      .Record(1000);

  StatsContext ctx;
  ctx.uptime_seconds = 12.5;
  ctx.open_connections = 3;
  ctx.queue_depth = 1;
  ctx.queue_limit = 100;
  ctx.sampler_name = "sharded8:halt";
  ctx.sampler_size = 42;
  ctx.shards = {{21, 10.0}, {21, 12.0}};
  const std::string json = registry.ToJson(ctx);

  // Top-level sections in order, and the per-section keys the loadgen and
  // the smoke job grep for. Changing any of these is a protocol break.
  for (const char* key :
       {"\"server\"", "\"ops\"", "\"batch\"", "\"queue\"", "\"sampler\"",
        "\"shards\"", "\"uptime_seconds\"", "\"open_connections\"",
        "\"connections_opened\"", "\"connections_closed\"", "\"bytes_in\"",
        "\"bytes_out\"", "\"frames_in\"", "\"bad_frames\"",
        "\"protocol_errors\"", "\"shed\"", "\"shutdown_rejects\"",
        "\"draining\"", "\"insert\"", "\"erase\"", "\"setweight\"",
        "\"getweight\"", "\"sample\"", "\"stats\"", "\"ping\"", "\"count\"",
        "\"errors\"", "\"mean_ns\"", "\"p50_ns\"", "\"p99_ns\"",
        "\"p999_ns\"", "\"batches\"", "\"batched_ops\"", "\"query_bursts\"",
        "\"burst_queries\"", "\"mean_occupancy\"", "\"p99_occupancy\"",
        "\"depth\"", "\"limit\"", "\"inflight_bytes\"", "\"inflight_limit\"",
        "\"name\"", "\"size\"", "\"total_weight\"", "\"memory_bytes\"",
        "\"wal_bytes\"", "\"shard\"", "\"live\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing key " << key;
  }
  // Merged counter values land in the document.
  EXPECT_NE(json.find("\"bytes_in\": 123"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shed\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"sharded8:halt\""), std::string::npos);
  // Two shard rows.
  EXPECT_NE(json.find("\"shard\": 1"), std::string::npos);
}

TEST(ServerMetricsTest, JsonEscapesStrings) {
  MetricsRegistry registry(1);
  StatsContext ctx;
  ctx.sampler_name = "we\"ird\\name";
  const std::string json = registry.ToJson(ctx);
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos) << json;
}

TEST(ServerMetricsTest, OpKindNamesAreStable) {
  EXPECT_STREQ(OpKindName(OpKind::kInsert), "insert");
  EXPECT_STREQ(OpKindName(OpKind::kErase), "erase");
  EXPECT_STREQ(OpKindName(OpKind::kSetWeight), "setweight");
  EXPECT_STREQ(OpKindName(OpKind::kGetWeight), "getweight");
  EXPECT_STREQ(OpKindName(OpKind::kSample), "sample");
  EXPECT_STREQ(OpKindName(OpKind::kStats), "stats");
  EXPECT_STREQ(OpKindName(OpKind::kPing), "ping");
}

}  // namespace
}  // namespace server
}  // namespace dpss
