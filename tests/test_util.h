// Shared helpers for the dpss test suites: deterministic random value
// generation and statistical acceptance gates.
//
// Statistical tests use fixed seeds, large trial counts and 4.5-sigma
// acceptance bounds, so a correct implementation fails with probability
// < 1e-5 per gate while off-by-one-ulp biases (~2^-30 or larger) are
// reliably caught at the chosen trial counts.

#ifndef DPSS_TESTS_TEST_UTIL_H_
#define DPSS_TESTS_TEST_UTIL_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "bigint/big_uint.h"
#include "util/random.h"

namespace dpss {
namespace testing_util {

// gtest-safe test-name fragment from a backend registry key
// ("sharded8:halt" -> "sharded8_halt"): parameterized suites over backend
// names share one mangling rule.
inline std::string GTestNameFromBackend(const std::string& backend) {
  std::string name = backend;
  for (char& c : name) {
    if (c == ':') c = '_';
  }
  return name;
}

// z-score of observing `hits` successes in `trials` Bernoulli(p) trials.
inline double BernoulliZScore(uint64_t hits, uint64_t trials, double p) {
  const double mean = static_cast<double>(trials) * p;
  const double var = static_cast<double>(trials) * p * (1.0 - p);
  if (var <= 0) return hits == static_cast<uint64_t>(mean) ? 0.0 : 1e9;
  return (static_cast<double>(hits) - mean) / std::sqrt(var);
}

// Pearson chi-square statistic for observed counts vs expected probabilities.
// Buckets with expected count < 5 are pooled into their neighbour.
inline double ChiSquare(const std::vector<uint64_t>& observed,
                        const std::vector<double>& expected_prob,
                        uint64_t trials, int* dof_out) {
  double chi = 0;
  int dof = -1;
  double pooled_exp = 0;
  double pooled_obs = 0;
  for (size_t i = 0; i < observed.size(); ++i) {
    pooled_exp += expected_prob[i] * static_cast<double>(trials);
    pooled_obs += static_cast<double>(observed[i]);
    if (pooled_exp >= 5.0) {
      const double d = pooled_obs - pooled_exp;
      chi += d * d / pooled_exp;
      ++dof;
      pooled_exp = 0;
      pooled_obs = 0;
    }
  }
  if (pooled_exp > 0) {
    const double d = pooled_obs - pooled_exp;
    chi += d * d / (pooled_exp > 1e-12 ? pooled_exp : 1e-12);
    ++dof;
  }
  if (dof_out != nullptr) *dof_out = dof < 1 ? 1 : dof;
  return chi;
}

// Conservative chi-square acceptance threshold: mean + 4.5 sigma + slack
// (chi-square with k dof has mean k, variance 2k).
inline double ChiSquareGate(int dof) {
  return dof + 4.5 * std::sqrt(2.0 * dof) + 10.0;
}

// A random BigUInt with exactly `bits` bits (top bit set); zero for bits==0.
inline BigUInt RandomValue(RandomEngine& rng, int bits) {
  if (bits == 0) return BigUInt();
  BigUInt r;
  int rem = bits - 1;
  while (rem > 0) {
    const int take = rem >= 64 ? 64 : rem;
    r = (r << take) + BigUInt(rng.NextBits(take));
    rem -= take;
  }
  return r + BigUInt::PowerOfTwo(bits - 1);
}

}  // namespace testing_util
}  // namespace dpss

#endif  // DPSS_TESTS_TEST_UTIL_H_
