// Shared helpers for the dpss test suites: deterministic random value
// generation, backend-name mangling, and the crash-injection Env wrapper
// used by the kill-point recovery harness.
//
// The statistical acceptance gates (z-scores, chi-square, the composed
// frequency gate) live in tests/statistical.h with their documented
// thresholds; this header re-exports them for the suites that predate the
// split.

#ifndef DPSS_TESTS_TEST_UTIL_H_
#define DPSS_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bigint/big_uint.h"
#include "persist/env.h"
#include "tests/statistical.h"
#include "util/random.h"

namespace dpss {
namespace testing_util {

// gtest-safe test-name fragment from a backend registry key
// ("sharded8:halt" -> "sharded8_halt"): parameterized suites over backend
// names share one mangling rule.
inline std::string GTestNameFromBackend(const std::string& backend) {
  std::string name = backend;
  for (char& c : name) {
    if (c == ':') c = '_';
  }
  return name;
}

// A random BigUInt with exactly `bits` bits (top bit set); zero for bits==0.
inline BigUInt RandomValue(RandomEngine& rng, int bits) {
  if (bits == 0) return BigUInt();
  BigUInt r;
  int rem = bits - 1;
  while (rem > 0) {
    const int take = rem >= 64 ? 64 : rem;
    r = (r << take) + BigUInt(rng.NextBits(take));
    rem -= take;
  }
  return r + BigUInt::PowerOfTwo(bits - 1);
}

// --- Crash injection (tests/recovery_test.cc) -----------------------------
//
// FaultInjectingEnv wraps any persist::Env and kills the "process" at a
// chosen *mutating-call index*: every Env/WritableFile call that could
// change durable state (Append, Sync, rename, delete, truncate, create)
// counts one tick; at tick `crash_at` the call is dropped — or, for an
// Append in partial mode, applied as a torn prefix — and every later
// mutating call fails with kIoError, exactly as if the process had died
// mid-syscall. Reads always pass through: recovery runs "after reboot" on
// whatever bytes survived.

class FaultInjectingEnv final : public persist::Env {
 public:
  // How the crashing call itself behaves.
  enum class Mode {
    kDrop,      // the call at crash_at has no effect at all
    kPartial,   // an Append/Msync at crash_at writes only half its bytes
    kTornPage,  // ... writes whole 4-KiB pages up to the midpoint, then
                // half a page — the torn shape of a crashed writeback
  };

  FaultInjectingEnv(persist::Env* base, uint64_t crash_at, Mode mode)
      : base_(base), crash_at_(crash_at), mode_(mode) {}

  // Mutating calls performed so far (pass crash_at beyond this on a
  // fault-free run to count a script's kill points).
  uint64_t mutating_calls() const { return calls_; }
  bool crashed() const { return dead_; }

  StatusOr<std::unique_ptr<persist::WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    // Opening with truncation mutates; append-opening does not.
    if (truncate && !Tick(nullptr)) {
      return IoError("fault injection: crashed");
    }
    StatusOr<std::unique_ptr<persist::WritableFile>> inner =
        base_->NewWritableFile(path, truncate);
    if (!inner.ok()) return inner;
    return StatusOr<std::unique_ptr<persist::WritableFile>>(
        std::make_unique<File>(this, std::move(*inner)));
  }

  Status ReadFileToString(const std::string& path, std::string* out) override {
    return base_->ReadFileToString(path, out);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override {
    return base_->ListDir(dir);
  }
  Status CreateDir(const std::string& dir) override {
    if (!Tick(nullptr)) return IoError("fault injection: crashed");
    return base_->CreateDir(dir);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    if (!Tick(nullptr)) return IoError("fault injection: crashed");
    return base_->RenameFile(from, to);
  }
  Status DeleteFile(const std::string& path) override {
    if (!Tick(nullptr)) return IoError("fault injection: crashed");
    return base_->DeleteFile(path);
  }
  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (!Tick(nullptr)) return IoError("fault injection: crashed");
    return base_->TruncateFile(path, size);
  }
  Status SyncDir(const std::string& dir) override {
    if (!Tick(nullptr)) return IoError("fault injection: crashed");
    return base_->SyncDir(dir);
  }

  StatusOr<std::unique_ptr<persist::MappedFile>> MapFile(
      const std::string& path, persist::MapMode mode) override {
    // Read-only mappings pass through like any read.
    if (mode == persist::MapMode::kPrivate) return base_->MapFile(path, mode);
    // Write-through mappings: Msync is the durability point, so buffer the
    // stores privately and copy them back to the base env only when an
    // Msync tick survives — a crashing Msync then applies a torn prefix,
    // exactly like a writeback that died mid-flight.
    if (!Tick(nullptr)) return IoError("fault injection: crashed");
    std::string bytes;
    Status st = base_->ReadFileToString(path, &bytes);
    if (!st.ok()) return st;
    return StatusOr<std::unique_ptr<persist::MappedFile>>(
        std::make_unique<Mapping>(this, path, std::move(bytes)));
  }

 private:
  static constexpr uint64_t kPage = 4096;

  // Bytes of an n-byte write that a crashing call leaves behind.
  uint64_t TornLen(uint64_t n) const {
    if (mode_ == Mode::kTornPage) {
      const uint64_t len = (n / 2) / kPage * kPage + kPage / 2;
      return len < n ? len : n;
    }
    return n / 2;
  }
  // The per-file wrapper the harness is named after: every write-side call
  // routes through the env's tick counter.
  class File final : public persist::WritableFile {
   public:
    File(FaultInjectingEnv* env, std::unique_ptr<persist::WritableFile> inner)
        : env_(env), inner_(std::move(inner)) {}

    Status Append(std::string_view data) override {
      if (!env_->Tick(&data)) {
        return IoError("fault injection: crashed");
      }
      if (env_->tear_next_) {
        env_->tear_next_ = false;
        (void)inner_->Append(data.substr(0, env_->TornLen(data.size())));
        return IoError("fault injection: torn write");
      }
      return inner_->Append(data);
    }
    Status Flush() override {
      if (!env_->Tick(nullptr)) return IoError("fault injection: crashed");
      return inner_->Flush();
    }
    Status Sync() override {
      if (!env_->Tick(nullptr)) return IoError("fault injection: crashed");
      return inner_->Sync();
    }
    Status Close() override { return inner_->Close(); }

   private:
    FaultInjectingEnv* env_;
    std::unique_ptr<persist::WritableFile> inner_;
  };

  // A write-through mapping under fault injection: stores land in a
  // private buffer and reach the base env only via a surviving Msync.
  class Mapping final : public persist::MappedFile {
   public:
    Mapping(FaultInjectingEnv* env, std::string path, std::string bytes)
        : env_(env), path_(std::move(path)), bytes_(std::move(bytes)) {}

    char* data() override { return bytes_.empty() ? nullptr : bytes_.data(); }
    uint64_t size() const override { return bytes_.size(); }

    Status Msync(uint64_t offset, uint64_t len) override {
      if (offset > bytes_.size() || len > bytes_.size() - offset) {
        return InvalidArgumentError("msync range outside the mapping");
      }
      std::string_view range(bytes_.data() + offset, len);
      if (!env_->Tick(&range)) return IoError("fault injection: crashed");
      if (env_->tear_next_) {
        env_->tear_next_ = false;
        Status st = WriteBack(offset, env_->TornLen(len));
        return st.ok() ? IoError("fault injection: torn write") : st;
      }
      return WriteBack(offset, len);
    }

    // A distinct kill point: the real fsync can die after the msync made
    // the page contents durable. In the MemEnv model the data already
    // landed via Msync's WriteBack, so a crash here leaves the file whole
    // but unpublished — the writer must not rename until Sync returns Ok.
    Status Sync() override {
      if (!env_->Tick(nullptr)) return IoError("fault injection: crashed");
      return Status::Ok();
    }

   private:
    // Splices [offset, offset+len) of the buffer into the base env's file
    // (direct base calls: the tick already happened at the Msync).
    Status WriteBack(uint64_t offset, uint64_t len) {
      std::string current;
      Status st = env_->base_->ReadFileToString(path_, &current);
      if (!st.ok()) return st;
      if (current.size() < bytes_.size()) current.resize(bytes_.size(), '\0');
      std::memcpy(current.data() + offset, bytes_.data() + offset, len);
      StatusOr<std::unique_ptr<persist::WritableFile>> f =
          env_->base_->NewWritableFile(path_, /*truncate=*/true);
      if (!f.ok()) return f.status();
      st = (*f)->Append(current);
      if (!st.ok()) return st;
      st = (*f)->Sync();
      if (!st.ok()) return st;
      return (*f)->Close();
    }

    FaultInjectingEnv* env_;
    std::string path_;
    std::string bytes_;
  };

  // Advances the mutating-call counter. Returns false when the call must
  // fail (we are at or past the crash point). For an Append/Msync in a
  // tearing mode the crashing call itself partially applies (tear_next_).
  bool Tick(const std::string_view* append_data) {
    if (dead_) return false;
    const uint64_t index = calls_++;
    if (index < crash_at_) return true;
    dead_ = true;
    if (append_data != nullptr && mode_ != Mode::kDrop) {
      tear_next_ = true;
      return true;  // let the write run once, torn
    }
    return false;
  }

  persist::Env* base_;
  uint64_t crash_at_;
  Mode mode_;
  uint64_t calls_ = 0;
  bool dead_ = false;
  bool tear_next_ = false;

  friend class File;
  friend class Mapping;
};

}  // namespace testing_util
}  // namespace dpss

#endif  // DPSS_TESTS_TEST_UTIL_H_
