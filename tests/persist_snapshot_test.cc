// The snapshot container (persist/snapshot.h) across every backend:
// byte-exact round trips, the FuzzedSnapshotsNeverAbort generalization
// (every truncation point + 400 bit flips, per backend, through the
// container), golden files pinning the v1 bytes, and the generic-frame
// cross-backend export path.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sampler.h"
#include "persist/snapshot.h"
#include "tests/test_util.h"
#include "util/random.h"

#ifndef DPSS_TEST_DATA_DIR
#define DPSS_TEST_DATA_DIR "tests/golden"
#endif

namespace dpss {
namespace {

using persist::LoadSampler;
using persist::LoadSamplerAs;
using persist::ReadSnapshotInfo;
using persist::SaveSampler;

// The full matrix the acceptance criteria name: all five flat/halt
// backends plus the sharded wrapper.
std::vector<std::string> SnapshotBackends() {
  return {"halt", "naive", "rebuild", "bucket_jump", "odss", "sharded8:halt"};
}

class PersistSnapshotTest : public ::testing::TestWithParam<std::string> {};

// Builds a state with every structurally interesting feature: a hole (and
// hence a bumped generation and non-trivial free-list order), a parked
// zero-weight item, an in-place update, and — where supported — a
// float-form weight.
std::unique_ptr<Sampler> BuildInterestingState(const std::string& backend,
                                               SamplerSpec* spec_out) {
  SamplerSpec spec;
  spec.seed = 1234;
  auto s = MakeSampler(backend, spec);
  EXPECT_NE(s, nullptr);
  std::vector<ItemId> ids;
  for (int i = 0; i < 24; ++i) ids.push_back(*s->Insert(1 + 13 * i));
  ids.push_back(*s->Insert(0));  // parked
  if (s->capabilities().float_weights) {
    ids.push_back(*s->InsertWeight(Weight(3, 120)));
  }
  EXPECT_TRUE(s->Erase(ids[5]).ok());
  EXPECT_TRUE(s->Erase(ids[11]).ok());
  EXPECT_TRUE(s->SetWeight(ids[2], 999).ok());
  *spec_out = spec;
  return s;
}

TEST_P(PersistSnapshotTest, ContainerRoundTripIsByteExact) {
  SamplerSpec spec;
  auto s = BuildInterestingState(GetParam(), &spec);
  std::string bytes;
  ASSERT_TRUE(SaveSampler(*s, spec, &bytes).ok());

  // Header describes the state.
  auto info = ReadSnapshotInfo(bytes);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->backend, GetParam());
  EXPECT_EQ(info->version, persist::kContainerVersion);
  EXPECT_EQ(info->size, s->size());
  EXPECT_TRUE(info->total_weight == s->TotalWeight());

  // The loaded sampler is the same backend in the same state: size, Σw,
  // and the (id, weight) set are all preserved.
  auto loaded = LoadSampler(bytes);
  ASSERT_TRUE(loaded.ok());
  EXPECT_STREQ((*loaded)->name(), GetParam().c_str());
  EXPECT_EQ((*loaded)->size(), s->size());
  EXPECT_TRUE((*loaded)->TotalWeight() == s->TotalWeight());
  std::vector<ItemRecord> before, after;
  ASSERT_TRUE(s->DumpItems(&before).ok());
  ASSERT_TRUE((*loaded)->DumpItems(&after).ok());
  ASSERT_EQ(before.size(), after.size());
  std::map<ItemId, Weight> expect;
  for (const ItemRecord& rec : before) expect[rec.id] = rec.weight;
  for (const ItemRecord& rec : after) {
    auto it = expect.find(rec.id);
    ASSERT_NE(it, expect.end()) << "id " << rec.id << " not in the source";
    EXPECT_TRUE(it->second == rec.weight) << "id " << rec.id;
  }
  EXPECT_TRUE((*loaded)->CheckInvariants().ok());

  // Byte-exactness both ways: re-serializing the loaded state reproduces
  // the file bit for bit (free-list order and generations included).
  std::string again;
  ASSERT_TRUE(SaveSampler(**loaded, info->spec, &again).ok());
  EXPECT_EQ(again, bytes);

  // And the loaded sampler continues to *behave* identically: the next
  // insert lands in the same slot with the same generation.
  const auto a = s->Insert(77);
  const auto b = (*loaded)->Insert(77);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

// FuzzedSnapshotsNeverAbort, generalized from halt-only to the full
// backend matrix via the container: every truncation point and 400
// random bit flips per backend must yield either a clean kBadSnapshot or
// a sampler that passes its own invariant audit — never an abort, never
// an out-of-bounds read (the CI sanitizers job runs this file under
// ASan+UBSan).
TEST_P(PersistSnapshotTest, FuzzedSnapshotsNeverAbort) {
  SamplerSpec spec;
  auto s = BuildInterestingState(GetParam(), &spec);
  std::string bytes;
  ASSERT_TRUE(SaveSampler(*s, spec, &bytes).ok());

  // Every truncation length (whole-word and ragged strides).
  for (size_t len = 0; len < bytes.size(); len += 1 + len % 7) {
    auto loaded = LoadSampler(bytes.substr(0, len));
    EXPECT_FALSE(loaded.ok()) << "len " << len;
    EXPECT_EQ(loaded.status().code(), StatusCode::kBadSnapshot)
        << "len " << len;
  }

  // Random single- and multi-bit flips. The frame CRCs catch essentially
  // everything; whatever slips through must still validate structurally.
  RandomEngine rng(22);
  int rejected = 0;
  for (int round = 0; round < 400; ++round) {
    std::string mutant = bytes;
    const int flips = 1 + static_cast<int>(rng.NextBelow(3));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBelow(mutant.size());
      mutant[pos] = static_cast<char>(
          static_cast<unsigned char>(mutant[pos]) ^
          (1u << rng.NextBelow(8)));
    }
    auto loaded = LoadSampler(mutant);
    if (loaded.ok()) {
      (*loaded)->CheckInvariants();
    } else {
      ++rejected;
      EXPECT_EQ(loaded.status().code(), StatusCode::kBadSnapshot);
    }
  }
  EXPECT_GT(rejected, 0);
}

// The raw backend Restore surface gets the same fuzz treatment without
// the container's CRC armour, so the per-backend parsers themselves must
// reject or structurally survive every mutation. Here bit flips do get
// accepted sometimes (e.g. generation flips of dead slots), which is the
// point: accepted mutants must still be internally consistent.
TEST_P(PersistSnapshotTest, FuzzedRawRestoresNeverAbort) {
  SamplerSpec spec;
  auto s = BuildInterestingState(GetParam(), &spec);
  std::string bytes;
  ASSERT_TRUE(s->Serialize(&bytes).ok());

  for (size_t len = 0; len < bytes.size(); len += 1 + len % 7) {
    auto sink = MakeSampler(GetParam(), spec);
    EXPECT_EQ(sink->Restore(bytes.substr(0, len)).code(),
              StatusCode::kBadSnapshot)
        << "len " << len;
    // A failed restore leaves the sampler untouched and usable.
    EXPECT_TRUE(sink->Insert(1).ok());
  }

  RandomEngine rng(23);
  int accepted = 0, rejected = 0;
  for (int round = 0; round < 400; ++round) {
    std::string mutant = bytes;
    const int flips = 1 + static_cast<int>(rng.NextBelow(3));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBelow(mutant.size());
      mutant[pos] = static_cast<char>(
          static_cast<unsigned char>(mutant[pos]) ^
          (1u << rng.NextBelow(8)));
    }
    auto sink = MakeSampler(GetParam(), spec);
    const Status st = sink->Restore(mutant);
    if (st.ok()) {
      ++accepted;
      sink->CheckInvariants();
    } else {
      ++rejected;
      EXPECT_EQ(st.code(), StatusCode::kBadSnapshot);
    }
  }
  // The corpus must exercise both outcomes (header flips reject; dead-slot
  // generation flips accept).
  EXPECT_GT(accepted, 0) << GetParam();
  EXPECT_GT(rejected, 0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, PersistSnapshotTest,
    ::testing::ValuesIn(SnapshotBackends()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return testing_util::GTestNameFromBackend(info.param);
    });

// --- Generic frames: cross-backend export ---------------------------------

TEST(PersistGenericTest, PortableExportCrossesBackends) {
  SamplerSpec spec;
  spec.seed = 9;
  auto halt = MakeSampler("halt", spec);
  std::vector<ItemId> ids;
  const std::vector<uint64_t> weights = {5, 10, 0, 85};
  ASSERT_TRUE(halt->InsertBatch(weights, &ids).ok());
  ASSERT_TRUE(halt->Erase(ids[1]).ok());

  std::string bytes;
  ASSERT_TRUE(persist::ExportPortable(*halt, spec, &bytes).ok());
  auto info = ReadSnapshotInfo(bytes);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->backend, "halt");

  // Import the item set into a different backend: weights and Σw carry
  // over; ids are freshly assigned (the documented generic-frame trade).
  auto odss = LoadSamplerAs("odss", spec, bytes);
  ASSERT_TRUE(odss.ok());
  EXPECT_STREQ((*odss)->name(), "odss");
  EXPECT_EQ((*odss)->size(), halt->size());
  EXPECT_TRUE((*odss)->TotalWeight() == halt->TotalWeight());
  std::vector<ItemId> out;
  ASSERT_TRUE(
      (*odss)->SampleInto({1, 1}, {0, 1}, &out).ok());

  // A native payload, by contrast, must not cross backends.
  std::string native;
  ASSERT_TRUE(SaveSampler(*halt, spec, &native).ok());
  auto wrong = LoadSamplerAs("naive", spec, native);
  EXPECT_EQ(wrong.status().code(), StatusCode::kBadSnapshot);
}

// --- Golden files: the v1 bytes are pinned --------------------------------
//
// The files under tests/golden/ were written by this PR's
// SnapshotWriter (see tests/golden/README.md for the generation script).
// If this test starts failing, the on-disk format changed: bump
// kContainerVersion and add an explicit reader for the old version —
// never silently re-pin the bytes.

std::string ReadGoldenFile(const std::string& name) {
  const std::string path = std::string(DPSS_TEST_DATA_DIR) + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return bytes;
}

struct GoldenCase {
  const char* file;
  const char* backend;
  uint64_t size;
  const char* total_weight_decimal;
};

class GoldenSnapshotTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenSnapshotTest, V1BytesStayLoadable) {
  const GoldenCase& c = GetParam();
  const std::string bytes = ReadGoldenFile(c.file);
  ASSERT_FALSE(bytes.empty()) << "missing golden file " << c.file;

  auto info = ReadSnapshotInfo(bytes);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->backend, c.backend);
  EXPECT_EQ(info->version, 1u);

  auto loaded = LoadSampler(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ((*loaded)->size(), c.size);
  EXPECT_EQ((*loaded)->TotalWeight().ToDecimalString(),
            c.total_weight_decimal);
  EXPECT_TRUE((*loaded)->CheckInvariants().ok());

  // Writer pin: re-serializing the loaded state must reproduce the golden
  // bytes exactly. A diff here means the v1 *writer* changed — which is a
  // format bump, not a refactor.
  std::string again;
  ASSERT_TRUE(SaveSampler(**loaded, info->spec, &again).ok());
  EXPECT_EQ(again, bytes) << "v1 container bytes changed for " << c.file;
}

INSTANTIATE_TEST_SUITE_P(
    V1, GoldenSnapshotTest,
    ::testing::Values(
        // 4 items inserted (10, 0, 3*2^40, 999), the zero-weight one
        // erased: 3 live, Σw = 10 + 999 + 3·2^40 = 3298534884337.
        GoldenCase{"halt_v1.snapshot", "halt", 3, "3298534884337"},
        // naive holds u64 weights only: (10, 7, 999), second erased.
        GoldenCase{"naive_v1.snapshot", "naive", 2, "1009"},
        // Two shards over halt, same ops as the halt case.
        GoldenCase{"sharded2_halt_v1.snapshot", "sharded2:halt", 3,
                   "3298534884337"}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return testing_util::GTestNameFromBackend(info.param.backend);
    });

}  // namespace
}  // namespace dpss
