// The snapshot container (persist/snapshot.h) across every backend:
// byte-exact round trips, the FuzzedSnapshotsNeverAbort generalization
// (every truncation point + 400 bit flips, per backend, through the
// container), golden files pinning the v1 bytes, and the generic-frame
// cross-backend export path.

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/arena.h"
#include "core/sampler.h"
#include "persist/crc32c.h"
#include "persist/snapshot.h"
#include "tests/test_util.h"
#include "util/little_endian.h"
#include "util/random.h"

#ifndef DPSS_TEST_DATA_DIR
#define DPSS_TEST_DATA_DIR "tests/golden"
#endif

namespace dpss {
namespace {

using persist::LoadSampler;
using persist::LoadSamplerAs;
using persist::ReadSnapshotInfo;
using persist::SaveSampler;

// The full matrix the acceptance criteria name: all five flat/halt
// backends plus the sharded wrapper — over both a classic inner ("halt")
// and an arena-image inner ("naive").
std::vector<std::string> SnapshotBackends() {
  return {"halt",         "naive", "rebuild",      "bucket_jump",
          "odss",         "sharded8:halt", "sharded4:naive"};
}

class PersistSnapshotTest : public ::testing::TestWithParam<std::string> {};

// Builds a state with every structurally interesting feature: a hole (and
// hence a bumped generation and non-trivial free-list order), a parked
// zero-weight item, an in-place update, and — where supported — a
// float-form weight.
std::unique_ptr<Sampler> BuildInterestingState(const std::string& backend,
                                               SamplerSpec* spec_out) {
  SamplerSpec spec;
  spec.seed = 1234;
  auto s = MakeSampler(backend, spec);
  EXPECT_NE(s, nullptr);
  std::vector<ItemId> ids;
  for (int i = 0; i < 24; ++i) ids.push_back(*s->Insert(1 + 13 * i));
  ids.push_back(*s->Insert(0));  // parked
  if (s->capabilities().float_weights) {
    ids.push_back(*s->InsertWeight(Weight(3, 120)));
  }
  EXPECT_TRUE(s->Erase(ids[5]).ok());
  EXPECT_TRUE(s->Erase(ids[11]).ok());
  EXPECT_TRUE(s->SetWeight(ids[2], 999).ok());
  *spec_out = spec;
  return s;
}

TEST_P(PersistSnapshotTest, ContainerRoundTripIsByteExact) {
  SamplerSpec spec;
  auto s = BuildInterestingState(GetParam(), &spec);
  std::string bytes;
  ASSERT_TRUE(SaveSampler(*s, spec, &bytes).ok());

  // Header describes the state.
  auto info = ReadSnapshotInfo(bytes);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->backend, GetParam());
  EXPECT_EQ(info->version, persist::kContainerVersion);
  EXPECT_EQ(info->size, s->size());
  EXPECT_TRUE(info->total_weight == s->TotalWeight());

  // The loaded sampler is the same backend in the same state: size, Σw,
  // and the (id, weight) set are all preserved.
  auto loaded = LoadSampler(bytes);
  ASSERT_TRUE(loaded.ok());
  EXPECT_STREQ((*loaded)->name(), GetParam().c_str());
  EXPECT_EQ((*loaded)->size(), s->size());
  EXPECT_TRUE((*loaded)->TotalWeight() == s->TotalWeight());
  std::vector<ItemRecord> before, after;
  ASSERT_TRUE(s->DumpItems(&before).ok());
  ASSERT_TRUE((*loaded)->DumpItems(&after).ok());
  ASSERT_EQ(before.size(), after.size());
  std::map<ItemId, Weight> expect;
  for (const ItemRecord& rec : before) expect[rec.id] = rec.weight;
  for (const ItemRecord& rec : after) {
    auto it = expect.find(rec.id);
    ASSERT_NE(it, expect.end()) << "id " << rec.id << " not in the source";
    EXPECT_TRUE(it->second == rec.weight) << "id " << rec.id;
  }
  EXPECT_TRUE((*loaded)->CheckInvariants().ok());

  // Byte-exactness both ways: re-serializing the loaded state reproduces
  // the file bit for bit (free-list order and generations included).
  std::string again;
  ASSERT_TRUE(SaveSampler(**loaded, info->spec, &again).ok());
  EXPECT_EQ(again, bytes);

  // And the loaded sampler continues to *behave* identically: the next
  // insert lands in the same slot with the same generation.
  const auto a = s->Insert(77);
  const auto b = (*loaded)->Insert(77);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

// FuzzedSnapshotsNeverAbort, generalized from halt-only to the full
// backend matrix via the container: every truncation point and 400
// random bit flips per backend must yield either a clean kBadSnapshot or
// a sampler that passes its own invariant audit — never an abort, never
// an out-of-bounds read (the CI sanitizers job runs this file under
// ASan+UBSan).
TEST_P(PersistSnapshotTest, FuzzedSnapshotsNeverAbort) {
  SamplerSpec spec;
  auto s = BuildInterestingState(GetParam(), &spec);
  std::string bytes;
  ASSERT_TRUE(SaveSampler(*s, spec, &bytes).ok());

  // Every truncation length (whole-word and ragged strides).
  for (size_t len = 0; len < bytes.size(); len += 1 + len % 7) {
    auto loaded = LoadSampler(bytes.substr(0, len));
    EXPECT_FALSE(loaded.ok()) << "len " << len;
    EXPECT_EQ(loaded.status().code(), StatusCode::kBadSnapshot)
        << "len " << len;
  }

  // Random single- and multi-bit flips. The frame CRCs catch essentially
  // everything; whatever slips through must still validate structurally.
  RandomEngine rng(22);
  int rejected = 0;
  for (int round = 0; round < 400; ++round) {
    std::string mutant = bytes;
    const int flips = 1 + static_cast<int>(rng.NextBelow(3));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBelow(mutant.size());
      mutant[pos] = static_cast<char>(
          static_cast<unsigned char>(mutant[pos]) ^
          (1u << rng.NextBelow(8)));
    }
    auto loaded = LoadSampler(mutant);
    if (loaded.ok()) {
      (*loaded)->CheckInvariants();
    } else {
      ++rejected;
      EXPECT_EQ(loaded.status().code(), StatusCode::kBadSnapshot);
    }
  }
  EXPECT_GT(rejected, 0);
}

// The arena-image (v2) container: a raw page dump of the relocatable
// arena. Round trips must preserve ids and behaviour exactly like v1, and
// re-collecting the loaded arena must reproduce the file bit for bit —
// the relocatability property the format is built on.
TEST_P(PersistSnapshotTest, ArenaContainerRoundTripIsByteExact) {
  SamplerSpec spec;
  auto s = BuildInterestingState(GetParam(), &spec);
  if (!s->capabilities().arena_image) {
    GTEST_SKIP() << GetParam() << " has no arena images";
  }
  std::string bytes;
  ASSERT_TRUE(persist::SaveSamplerArena(s.get(), spec, &bytes).ok());
  auto info = ReadSnapshotInfo(bytes);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->backend, GetParam());
  EXPECT_EQ(info->version, persist::kContainerVersionArena);
  EXPECT_EQ(info->size, s->size());
  EXPECT_TRUE(info->total_weight == s->TotalWeight());
  // The page payload region starts at a 4-KiB file offset, so any state
  // at all makes the container bigger than one alignment block.
  EXPECT_GT(bytes.size(), persist::kArenaFileAlign);

  auto loaded = LoadSampler(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_STREQ((*loaded)->name(), GetParam().c_str());
  EXPECT_EQ((*loaded)->size(), s->size());
  EXPECT_TRUE((*loaded)->TotalWeight() == s->TotalWeight());
  EXPECT_TRUE((*loaded)->CheckInvariants().ok());
  std::vector<ItemRecord> before, after;
  ASSERT_TRUE(s->DumpItems(&before).ok());
  ASSERT_TRUE((*loaded)->DumpItems(&after).ok());
  ASSERT_EQ(before.size(), after.size());
  std::map<ItemId, Weight> expect;
  for (const ItemRecord& rec : before) expect[rec.id] = rec.weight;
  for (const ItemRecord& rec : after) {
    auto it = expect.find(rec.id);
    ASSERT_NE(it, expect.end()) << "id " << rec.id << " not in the source";
    EXPECT_TRUE(it->second == rec.weight) << "id " << rec.id;
  }

  // Relocation pin: the loaded arena lives at a different address, yet
  // collecting it again reproduces the identical container bytes.
  std::string again;
  ASSERT_TRUE(persist::SaveSamplerArena(loaded->get(), spec, &again).ok());
  EXPECT_EQ(again, bytes);

  // Behavioural identity survives the trip.
  const auto a = s->Insert(77);
  const auto b = (*loaded)->Insert(77);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

// The v2 fuzz gate: every truncation point and 400 random bit flips of an
// arena container must yield a clean kBadSnapshot or an invariant-passing
// sampler — the per-page CRCs make "accepted" essentially impossible, but
// the requirement is the absence of aborts and OOB reads under ASan/UBSan.
TEST_P(PersistSnapshotTest, FuzzedArenaSnapshotsNeverAbort) {
  SamplerSpec spec;
  auto s = BuildInterestingState(GetParam(), &spec);
  if (!s->capabilities().arena_image) {
    GTEST_SKIP() << GetParam() << " has no arena images";
  }
  std::string bytes;
  ASSERT_TRUE(persist::SaveSamplerArena(s.get(), spec, &bytes).ok());

  // Truncations, with a stride that still hits every page boundary region.
  for (size_t len = 0; len < bytes.size(); len += 1 + len % 409) {
    auto loaded = LoadSampler(bytes.substr(0, len));
    EXPECT_FALSE(loaded.ok()) << "len " << len;
    EXPECT_EQ(loaded.status().code(), StatusCode::kBadSnapshot)
        << "len " << len;
  }

  RandomEngine rng(29);
  int rejected = 0;
  for (int round = 0; round < 400; ++round) {
    std::string mutant = bytes;
    const int flips = 1 + static_cast<int>(rng.NextBelow(3));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBelow(mutant.size());
      mutant[pos] = static_cast<char>(
          static_cast<unsigned char>(mutant[pos]) ^
          (1u << rng.NextBelow(8)));
    }
    auto loaded = LoadSampler(mutant);
    if (loaded.ok()) {
      (*loaded)->CheckInvariants();
    } else {
      ++rejected;
      EXPECT_EQ(loaded.status().code(), StatusCode::kBadSnapshot);
    }
  }
  EXPECT_GT(rejected, 0);
}

// A delta container only makes sense relative to its chain: feeding one
// to the standalone loader must be a clean, loud rejection.
TEST_P(PersistSnapshotTest, StandaloneDeltaIsRejected) {
  SamplerSpec spec;
  auto s = BuildInterestingState(GetParam(), &spec);
  if (!s->capabilities().arena_image) {
    GTEST_SKIP() << GetParam() << " has no arena images";
  }
  std::string base;
  ASSERT_TRUE(persist::SaveSamplerArena(s.get(), spec, &base).ok());
  ASSERT_TRUE(s->SetWeight(*s->Insert(123), 321).ok());
  std::string delta;
  ASSERT_TRUE(
      persist::SaveSamplerArenaDelta(s.get(), spec, /*base_epoch=*/1, &delta)
          .ok());
  auto loaded = LoadSampler(delta);
  EXPECT_EQ(loaded.status().code(), StatusCode::kBadSnapshot);
}

// The raw backend Restore surface gets the same fuzz treatment without
// the container's CRC armour, so the per-backend parsers themselves must
// reject or structurally survive every mutation. Here bit flips do get
// accepted sometimes (e.g. generation flips of dead slots), which is the
// point: accepted mutants must still be internally consistent.
TEST_P(PersistSnapshotTest, FuzzedRawRestoresNeverAbort) {
  SamplerSpec spec;
  auto s = BuildInterestingState(GetParam(), &spec);
  std::string bytes;
  ASSERT_TRUE(s->Serialize(&bytes).ok());

  for (size_t len = 0; len < bytes.size(); len += 1 + len % 7) {
    auto sink = MakeSampler(GetParam(), spec);
    EXPECT_EQ(sink->Restore(bytes.substr(0, len)).code(),
              StatusCode::kBadSnapshot)
        << "len " << len;
    // A failed restore leaves the sampler untouched and usable.
    EXPECT_TRUE(sink->Insert(1).ok());
  }

  RandomEngine rng(23);
  int accepted = 0, rejected = 0;
  for (int round = 0; round < 400; ++round) {
    std::string mutant = bytes;
    const int flips = 1 + static_cast<int>(rng.NextBelow(3));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBelow(mutant.size());
      mutant[pos] = static_cast<char>(
          static_cast<unsigned char>(mutant[pos]) ^
          (1u << rng.NextBelow(8)));
    }
    auto sink = MakeSampler(GetParam(), spec);
    const Status st = sink->Restore(mutant);
    if (st.ok()) {
      ++accepted;
      sink->CheckInvariants();
    } else {
      ++rejected;
      EXPECT_EQ(st.code(), StatusCode::kBadSnapshot);
    }
  }
  // The corpus must exercise both outcomes (header flips reject; dead-slot
  // generation flips accept).
  EXPECT_GT(accepted, 0) << GetParam();
  EXPECT_GT(rejected, 0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, PersistSnapshotTest,
    ::testing::ValuesIn(SnapshotBackends()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return testing_util::GTestNameFromBackend(info.param);
    });

// --- Crafted (CRC-valid) v2 containers ------------------------------------
//
// Random bit flips die on the frame CRCs, so the adversarial cases below
// are built through SnapshotWriter — every frame and page checksum is
// valid and only the *semantic* validation stands between the crafted
// metadata and the loader.

// used_bytes in the top partial page of the u64 range makes PageRoundUp
// wrap to 0, so page_count == 0 cross-checks "consistently" while
// used_bytes claims a multi-exabyte arena; the loader must reject it, not
// size dirty bitmaps or validate extents against the fiction.
TEST(PersistArenaCraftedTest, WrappingUsedBytesIsRejected) {
  SamplerSpec spec;
  spec.seed = 7;
  auto s = MakeSampler("naive", spec);
  ASSERT_TRUE(s->Insert(5).ok());
  std::string meta;
  AppendU32(&meta, 1);           // image_count
  AppendU32(&meta, 0);           // roots_len
  AppendU64(&meta, UINT64_MAX);  // used_bytes: PageRoundUp wraps to 0
  AppendU64(&meta, 0);           // page_count matching the wrapped value
  std::string bytes;
  persist::SnapshotWriter writer(&bytes, persist::kContainerVersionArena);
  ASSERT_TRUE(writer.BeginSnapshot(*s, spec).ok());
  ASSERT_TRUE(
      writer.AddArenaFrame(persist::FrameType::kArenaImage, meta, {}).ok());
  ASSERT_TRUE(writer.Finish().ok());

  auto loaded = persist::LoadSampler(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kBadSnapshot);
}

// A roots block that aliases the generation array onto the weight bytes:
// every per-array check still passes (the u32 views of small weights are
// in generation range, count/Σw are computed from the untouched weights),
// so only the extent-disjointness validation can refuse it. Accepting it
// would let later writes through one array silently corrupt the other.
TEST(PersistArenaCraftedTest, AliasedSlotExtentsAreRejected) {
  SamplerSpec spec;
  spec.seed = 11;
  auto s = MakeSampler("naive", spec);
  for (int i = 0; i < 24; ++i) ASSERT_TRUE(s->Insert(1 + i).ok());
  std::vector<ArenaImage> images;
  ASSERT_TRUE(s->CollectArenaImages(ArenaImageMode::kFull, &images).ok());
  ASSERT_EQ(images.size(), 1u);
  ArenaImage& img = images[0];

  // Decode the 14-word roots block and point gens at the weights extent.
  std::vector<uint64_t> roots;
  size_t pos = 0;
  for (uint64_t v = 0; ReadU64(img.roots, &pos, &v);) roots.push_back(v);
  ASSERT_EQ(roots.size(), 14u);
  roots[6] = roots[2];  // gens_off = weights_off
  roots[7] = roots[3];  // gens_cap = weights_cap
  img.roots.clear();
  for (uint64_t v : roots) AppendU64(&img.roots, v);

  // Reframe the tampered image with correct frame and page CRCs.
  std::string meta;
  AppendU32(&meta, 1);
  AppendU32(&meta, static_cast<uint32_t>(img.roots.size()));
  meta.append(img.roots);
  AppendU64(&meta, img.used_bytes);
  AppendU64(&meta, img.page_count);
  std::vector<const std::string*> pages;
  for (const auto& [index, page] : img.pages) {
    (void)index;
    AppendU32(&meta, persist::MaskCrc(persist::Crc32c(page)));
    pages.push_back(&page);
  }
  std::string bytes;
  persist::SnapshotWriter writer(&bytes, persist::kContainerVersionArena);
  ASSERT_TRUE(writer.BeginSnapshot(*s, spec).ok());
  ASSERT_TRUE(
      writer.AddArenaFrame(persist::FrameType::kArenaImage, meta, pages)
          .ok());
  ASSERT_TRUE(writer.Finish().ok());

  auto loaded = persist::LoadSampler(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kBadSnapshot);
}

// --- Generic frames: cross-backend export ---------------------------------

TEST(PersistGenericTest, PortableExportCrossesBackends) {
  SamplerSpec spec;
  spec.seed = 9;
  auto halt = MakeSampler("halt", spec);
  std::vector<ItemId> ids;
  const std::vector<uint64_t> weights = {5, 10, 0, 85};
  ASSERT_TRUE(halt->InsertBatch(weights, &ids).ok());
  ASSERT_TRUE(halt->Erase(ids[1]).ok());

  std::string bytes;
  ASSERT_TRUE(persist::ExportPortable(*halt, spec, &bytes).ok());
  auto info = ReadSnapshotInfo(bytes);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->backend, "halt");

  // Import the item set into a different backend: weights and Σw carry
  // over; ids are freshly assigned (the documented generic-frame trade).
  auto odss = LoadSamplerAs("odss", spec, bytes);
  ASSERT_TRUE(odss.ok());
  EXPECT_STREQ((*odss)->name(), "odss");
  EXPECT_EQ((*odss)->size(), halt->size());
  EXPECT_TRUE((*odss)->TotalWeight() == halt->TotalWeight());
  std::vector<ItemId> out;
  ASSERT_TRUE(
      (*odss)->SampleInto({1, 1}, {0, 1}, &out).ok());

  // A native payload, by contrast, must not cross backends.
  std::string native;
  ASSERT_TRUE(SaveSampler(*halt, spec, &native).ok());
  auto wrong = LoadSamplerAs("naive", spec, native);
  EXPECT_EQ(wrong.status().code(), StatusCode::kBadSnapshot);
}

// --- Golden files: the v1 bytes are pinned --------------------------------
//
// The files under tests/golden/ were written by this PR's
// SnapshotWriter (see tests/golden/README.md for the generation script).
// If this test starts failing, the on-disk format changed: bump
// kContainerVersion and add an explicit reader for the old version —
// never silently re-pin the bytes.

std::string ReadGoldenFile(const std::string& name) {
  const std::string path = std::string(DPSS_TEST_DATA_DIR) + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return bytes;
}

struct GoldenCase {
  const char* file;
  const char* backend;
  uint32_t version;
  uint64_t size;
  const char* total_weight_decimal;
};

class GoldenSnapshotTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenSnapshotTest, PinnedBytesStayLoadable) {
  const GoldenCase& c = GetParam();
  const std::string bytes = ReadGoldenFile(c.file);
  ASSERT_FALSE(bytes.empty()) << "missing golden file " << c.file;

  auto info = ReadSnapshotInfo(bytes);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->backend, c.backend);
  EXPECT_EQ(info->version, c.version);

  auto loaded = LoadSampler(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ((*loaded)->size(), c.size);
  EXPECT_EQ((*loaded)->TotalWeight().ToDecimalString(),
            c.total_weight_decimal);
  EXPECT_TRUE((*loaded)->CheckInvariants().ok());

  // Writer pin: re-serializing the loaded state must reproduce the golden
  // bytes exactly. A diff here means the *writer* for that version changed
  // — which is a format bump, not a refactor.
  std::string again;
  if (c.version == persist::kContainerVersionArena) {
    ASSERT_TRUE(
        persist::SaveSamplerArena(loaded->get(), info->spec, &again).ok());
  } else {
    ASSERT_TRUE(SaveSampler(**loaded, info->spec, &again).ok());
  }
  EXPECT_EQ(again, bytes) << "container bytes changed for " << c.file;
}

INSTANTIATE_TEST_SUITE_P(
    Pinned, GoldenSnapshotTest,
    ::testing::Values(
        // 4 items inserted (10, 0, 3*2^40, 999), the zero-weight one
        // erased: 3 live, Σw = 10 + 999 + 3·2^40 = 3298534884337.
        GoldenCase{"halt_v1.snapshot", "halt", 1, 3, "3298534884337"},
        // naive holds u64 weights only: (10, 7, 999), second erased.
        GoldenCase{"naive_v1.snapshot", "naive", 1, 2, "1009"},
        // Two shards over halt, same ops as the halt case.
        GoldenCase{"sharded2_halt_v1.snapshot", "sharded2:halt", 1, 3,
                   "3298534884337"},
        // The same naive state as a v2 arena image, alone and sharded:
        // pins the arena byte layout itself.
        GoldenCase{"naive_v2.snapshot", "naive", 2, 2, "1009"},
        GoldenCase{"sharded2_naive_v2.snapshot", "sharded2:naive", 2, 2,
                   "1009"}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return testing_util::GTestNameFromBackend(info.param.backend) + "_v" +
             std::to_string(info.param.version);
    });

}  // namespace
}  // namespace dpss
