// Tests for the application layer: graph generators, influence
// maximization (RR-set semantics), local clustering (mass conservation and
// planted-community recovery), and the Theorem 1.2 integer-sorting
// reduction.

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "apps/graph.h"
#include "apps/influence_max.h"
#include "apps/integer_sort.h"
#include "apps/local_clustering.h"
#include "util/random.h"

namespace dpss {
namespace {

TEST(GraphTest, AddEdgeMaintainsBothDirections) {
  Graph g(4);
  g.AddEdge(0, 1, 5);
  g.AddEdge(2, 1, 7);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutEdges(0).size(), 1u);
  EXPECT_EQ(g.OutEdges(0)[0].to, 1u);
  EXPECT_EQ(g.OutEdges(0)[0].weight, 5u);
  ASSERT_EQ(g.InEdges(1).size(), 2u);
  EXPECT_EQ(g.OutWeight(0), 5u);
  EXPECT_EQ(g.Degree(3), 0u);
}

TEST(GraphTest, GeneratorsAreDeterministic) {
  const Graph a = Graph::ErdosRenyi(100, 4.0, 10, 1);
  const Graph b = Graph::ErdosRenyi(100, 4.0, 10, 1);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  const Graph c = Graph::ErdosRenyi(100, 4.0, 10, 2);
  // Different seeds should (almost surely) differ in structure.
  bool same = a.num_edges() == c.num_edges();
  for (uint32_t u = 0; same && u < 100; ++u) {
    same = a.OutEdges(u).size() == c.OutEdges(u).size();
  }
  EXPECT_FALSE(same);
}

TEST(GraphTest, PreferentialAttachmentIsHeavyTailed) {
  const Graph g = Graph::PreferentialAttachment(2000, 2, 4, 3);
  uint64_t max_deg = 0;
  uint64_t total = 0;
  for (uint32_t u = 0; u < g.num_nodes(); ++u) {
    max_deg = std::max<uint64_t>(max_deg, g.Degree(u));
    total += g.Degree(u);
  }
  const double avg = static_cast<double>(total) / g.num_nodes();
  EXPECT_GT(static_cast<double>(max_deg), 10 * avg);
}

TEST(GraphTest, PlantedPartitionDensities) {
  const Graph g = Graph::PlantedPartition(400, 0.1, 0.01, 4);
  uint64_t in = 0, out = 0;
  for (uint32_t u = 0; u < 400; ++u) {
    for (const auto& e : g.OutEdges(u)) {
      ((u < 200) == (e.to < 200) ? in : out) += 1;
    }
  }
  EXPECT_GT(in, 5 * out);
}

TEST(InfluenceMaxTest, RRSetContainsTargetAndIsConnected) {
  const Graph g = Graph::ErdosRenyi(300, 5.0, 4, 5);
  InfluenceMaximizer im(300, 6);
  for (uint32_t u = 0; u < 300; ++u) {
    for (const auto& e : g.OutEdges(u)) im.AddEdge(u, e.to, e.weight);
  }
  RandomEngine rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto rr = im.SampleRRSet(rng);
    ASSERT_GE(rr.size(), 1u);
    // No duplicates.
    std::set<uint32_t> uniq(rr.begin(), rr.end());
    EXPECT_EQ(uniq.size(), rr.size());
  }
}

TEST(InfluenceMaxTest, IsolatedNodesGiveSingletonRRSets) {
  InfluenceMaximizer im(10, 8);
  RandomEngine rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(im.SampleRRSet(rng).size(), 1u);
  }
}

TEST(InfluenceMaxTest, HubIsSelectedAsSeed) {
  // A star: node 0 influences everyone with probability 1 (each spoke's
  // only in-edge has full weight share).
  InfluenceMaximizer im(50, 10);
  for (uint32_t v = 1; v < 50; ++v) im.AddEdge(0, v, 1);
  RandomEngine rng(11);
  const auto result = im.SelectSeeds(1, 400, rng);
  ASSERT_EQ(result.seeds.size(), 1u);
  EXPECT_EQ(result.seeds[0], 0u);
  EXPECT_GT(result.estimated_influence, 45.0);
}

TEST(InfluenceMaxTest, ParallelSelectSeedsMatchesSerialQuality) {
  // GreeDIMM-style per-worker sampling: the parallel path must find the
  // same obvious seed and a comparable influence estimate, be
  // deterministic for a fixed (seed, workers) pair, and stay safe when
  // workers collide on one node's sampler — both with a plain backend
  // (per-node locks serialize) and with the internally synchronized
  // sharded wrapper.
  for (const char* backend : {"halt", "sharded4:halt"}) {
    InfluenceMaximizer im(50, 10, backend);
    for (uint32_t v = 1; v < 50; ++v) im.AddEdge(0, v, 1);

    const auto parallel = im.SelectSeedsParallel(1, 400, 4, 21);
    ASSERT_EQ(parallel.seeds.size(), 1u) << backend;
    EXPECT_EQ(parallel.seeds[0], 0u) << backend;
    EXPECT_GT(parallel.estimated_influence, 45.0) << backend;

    const auto again = im.SelectSeedsParallel(1, 400, 4, 21);
    EXPECT_EQ(parallel.seeds, again.seeds) << backend;
    EXPECT_EQ(parallel.estimated_influence, again.estimated_influence)
        << backend;

    RandomEngine rng(11);
    const auto serial = im.SelectSeeds(1, 400, rng);
    EXPECT_EQ(serial.seeds, parallel.seeds) << backend;
    EXPECT_NEAR(serial.estimated_influence, parallel.estimated_influence,
                5.0)
        << backend;
  }
}

TEST(InfluenceMaxTest, GreedyCoverageIsMonotone) {
  const Graph g = Graph::PreferentialAttachment(500, 3, 4, 12);
  InfluenceMaximizer im(500, 13);
  for (uint32_t u = 0; u < 500; ++u) {
    for (const auto& e : g.OutEdges(u)) im.AddEdge(u, e.to, e.weight);
  }
  RandomEngine rng(14);
  const auto one = im.SelectSeeds(1, 1500, rng);
  const auto five = im.SelectSeeds(5, 1500, rng);
  EXPECT_GE(five.estimated_influence, one.estimated_influence);
  EXPECT_EQ(five.seeds.size(), 5u);
  std::set<uint32_t> uniq(five.seeds.begin(), five.seeds.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(LocalClusteringTest, MassIsConserved) {
  const Graph g = Graph::ErdosRenyi(200, 6.0, 3, 15);
  LocalClusteringEngine engine(g, 16);
  RandomEngine rng(17);
  LocalClusteringEngine::PushStats stats;
  const uint64_t quanta = 50000;
  const auto mass = engine.EstimateMass(3, quanta, 5, rng, &stats);
  const uint64_t total = std::accumulate(mass.begin(), mass.end(),
                                         uint64_t{0});
  EXPECT_EQ(total, quanta);
  EXPECT_EQ(stats.quanta_spent, quanta);
  EXPECT_GT(stats.pushes, 0u);
  // The seed node absorbs the largest share under teleportation.
  EXPECT_EQ(std::max_element(mass.begin(), mass.end()) - mass.begin(), 3);
}

TEST(LocalClusteringTest, RecoversPlantedCommunity) {
  const Graph g = Graph::PlantedPartition(400, 0.08, 0.002, 18);
  LocalClusteringEngine engine(g, 19);
  RandomEngine rng(20);
  const auto sweep = engine.Cluster(/*seed_node=*/5, 150000, 6, rng);
  ASSERT_GE(sweep.cluster.size(), 100u);
  uint64_t inside = 0;
  for (uint32_t u : sweep.cluster) inside += u < 200 ? 1 : 0;
  EXPECT_GE(static_cast<double>(inside) / sweep.cluster.size(), 0.9);
  EXPECT_LT(sweep.conductance, 0.2);
}

TEST(LocalClusteringTest, DynamicEdgesRaiseConductance) {
  const Graph g = Graph::PlantedPartition(300, 0.1, 0.002, 21);
  LocalClusteringEngine engine(g, 22);
  RandomEngine rng(23);
  const auto before = engine.Cluster(2, 100000, 6, rng);
  RandomEngine egen(24);
  for (int i = 0; i < 4000; ++i) {
    const uint32_t u = static_cast<uint32_t>(egen.NextBelow(150));
    const uint32_t v = static_cast<uint32_t>(150 + egen.NextBelow(150));
    engine.AddEdge(u, v, 1);
    engine.AddEdge(v, u, 1);
  }
  const auto after = engine.Cluster(2, 100000, 6, rng);
  EXPECT_GT(after.conductance, before.conductance);
}

TEST(IntegerSortTest, SortsDistinctValues) {
  RandomEngine rng(25);
  std::vector<uint64_t> values(200);
  std::iota(values.begin(), values.end(), 0);
  for (size_t i = values.size(); i > 1; --i) {
    std::swap(values[i - 1], values[rng.NextBelow(i)]);
  }
  IntegerSortStats stats;
  const auto sorted = SortIntegersDescendingViaDpss(values, 26, &stats);
  std::vector<uint64_t> expected = values;
  std::sort(expected.rbegin(), expected.rend());
  EXPECT_EQ(sorted, expected);
  // Lemma 5.1/5.2: expected <= 2 queries per deleted item.
  EXPECT_LT(static_cast<double>(stats.queries), 3.0 * values.size());
  // Lemma 5.3: expected O(N) swaps in total.
  EXPECT_LT(static_cast<double>(stats.swaps), 5.0 * values.size());
}

class IntegerSortParamTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(IntegerSortParamTest, SortsRandomInputs) {
  const auto [n, range] = GetParam();
  RandomEngine rng(27 + n + range);
  std::vector<uint64_t> values;
  for (int i = 0; i < n; ++i) values.push_back(rng.NextBelow(range));
  const auto sorted = SortIntegersDescendingViaDpss(values, 28, nullptr);
  std::vector<uint64_t> expected = values;
  std::sort(expected.rbegin(), expected.rend());
  EXPECT_EQ(sorted, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, IntegerSortParamTest,
                         ::testing::Values(std::pair<int, int>{1, 10},
                                           std::pair<int, int>{2, 2},
                                           std::pair<int, int>{50, 254},
                                           std::pair<int, int>{500, 50},
                                           std::pair<int, int>{1000, 254},
                                           std::pair<int, int>{1500, 4}));

TEST(IntegerSortTest, EmptyAndSingleton) {
  EXPECT_TRUE(SortIntegersDescendingViaDpss({}, 1, nullptr).empty());
  EXPECT_EQ(SortIntegersDescendingViaDpss({7}, 1, nullptr),
            std::vector<uint64_t>{7});
}

}  // namespace
}  // namespace dpss
