// Direct tests of HaltStructure beneath the DpssSampler facade: raw-W
// sampling semantics, hierarchy parameters, update propagation across the
// three levels, ablation-flag distributional equivalence, and memory
// accounting.

#include "core/halt.h"

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "util/random.h"

namespace dpss {
namespace {

using testing_util::BernoulliZScore;

class Recorder : public BucketStructure::RelocationListener {
 public:
  void OnRelocate(uint64_t handle, BucketStructure::Location loc) override {
    locations[handle] = loc;
  }
  std::map<uint64_t, BucketStructure::Location> locations;
};

TEST(HaltStructureTest, ParametersFollowCapacity) {
  Recorder rec;
  // Capacity 16 = 16^1: g1 = 4, level-2 capacity pow16(4) = 16, g2 = m = 4.
  HaltStructure small(4, &rec);
  EXPECT_EQ(small.level1_log2_capacity(), 4);
  EXPECT_EQ(small.m(), 4);
  EXPECT_EQ(small.k_slots(), 2 * 2 + 2);

  // Capacity 2^20: g1 = 20, level-2 capacity pow16(20) = 256, g2 = m = 8.
  HaltStructure big(20, &rec);
  EXPECT_EQ(big.m(), 8);
  EXPECT_EQ(big.k_slots(), 2 * 3 + 2);
}

TEST(HaltStructureTest, RawWSamplingSemantics) {
  Recorder rec;
  HaltStructure h(4, &rec);
  h.Insert(0, Weight(8, 0));
  h.Insert(1, Weight(24, 0));
  RandomEngine rng(1);
  // W = 16: item 0 has p = 1/2, item 1 has p = 1 (24 >= 16).
  const BigUInt wnum(uint64_t{16}), wden(uint64_t{1});
  const uint64_t trials = 60000;
  uint64_t h0 = 0, h1 = 0;
  for (uint64_t t = 0; t < trials; ++t) {
    for (uint64_t x : h.Sample(wnum, wden, rng)) {
      h0 += x == 0;
      h1 += x == 1;
    }
  }
  EXPECT_EQ(h1, trials);
  EXPECT_LE(std::abs(BernoulliZScore(h0, trials, 0.5)), 4.5);
}

TEST(HaltStructureTest, FractionalWSemantics) {
  Recorder rec;
  HaltStructure h(4, &rec);
  h.Insert(0, Weight(1, 0));
  RandomEngine rng(2);
  // W = 7/2: p = 2/7.
  const BigUInt wnum(uint64_t{7}), wden(uint64_t{2});
  const uint64_t trials = 70000;
  uint64_t hits = 0;
  for (uint64_t t = 0; t < trials; ++t) {
    hits += h.Sample(wnum, wden, rng).size();
  }
  EXPECT_LE(std::abs(BernoulliZScore(hits, trials, 2.0 / 7.0)), 4.5);
}

TEST(HaltStructureTest, UpdatePropagationDepth) {
  // Filling many distinct buckets in one group exercises the level-2 and
  // level-3 re-insertions; the invariant checker validates every synthetic
  // weight afterwards.
  Recorder rec;
  HaltStructure h(8, &rec);
  uint64_t handle = 0;
  for (int e = 0; e < 40; ++e) {
    for (int c = 0; c < 3; ++c) {
      h.Insert(handle++, Weight(uint64_t{1} << e, 0));
      h.CheckInvariants();
    }
  }
  EXPECT_EQ(h.size(), 120u);
  // Delete in an interleaved order.
  for (uint64_t x = 0; x < 120; x += 2) {
    h.Erase(rec.locations[x]);
    if (x % 20 == 0) h.CheckInvariants();
  }
  h.CheckInvariants();
  EXPECT_EQ(h.size(), 60u);
}

TEST(HaltStructureTest, AblationFlagsPreserveDistribution) {
  RandomEngine wgen(3);
  for (const bool use_table : {true, false}) {
    for (const bool linear : {false, true}) {
      Recorder rec;
      HaltStructure h(8, &rec);
      std::vector<uint64_t> weights;
      for (uint64_t i = 0; i < 30; ++i) {
        weights.push_back(1 + (i * i * 37) % 5000);
        h.Insert(i, Weight(weights.back(), 0));
      }
      h.SetUseLookupTable(use_table);
      h.SetInsignificantLinearScan(linear);
      // W = 3·Σw: every p = w/(3Σw) < 1.
      uint64_t sum = 0;
      for (uint64_t w : weights) sum += w;
      const BigUInt wnum(3 * sum), wden(uint64_t{1});
      RandomEngine rng(100 + use_table * 2 + linear);
      const uint64_t trials = 40000;
      std::vector<uint64_t> hits(weights.size(), 0);
      for (uint64_t t = 0; t < trials; ++t) {
        for (uint64_t x : h.Sample(wnum, wden, rng)) hits[x]++;
      }
      for (size_t i = 0; i < weights.size(); ++i) {
        const double p = static_cast<double>(weights[i]) /
                         (3.0 * static_cast<double>(sum));
        EXPECT_LE(std::abs(BernoulliZScore(hits[i], trials, p)), 4.75)
            << "table=" << use_table << " linear=" << linear << " i=" << i;
      }
    }
  }
}

TEST(HaltStructureTest, WZeroSelectsEverything) {
  Recorder rec;
  HaltStructure h(4, &rec);
  for (uint64_t i = 0; i < 10; ++i) h.Insert(i, Weight(1 + i, 0));
  RandomEngine rng(4);
  EXPECT_EQ(h.Sample(BigUInt(), BigUInt(uint64_t{1}), rng).size(), 10u);
}

TEST(HaltStructureTest, HugeWMakesSamplingRare) {
  Recorder rec;
  HaltStructure h(4, &rec);
  for (uint64_t i = 0; i < 20; ++i) h.Insert(i, Weight(1 + i, 0));
  RandomEngine rng(5);
  const BigUInt wnum = BigUInt::PowerOfTwo(120);
  uint64_t total = 0;
  for (int t = 0; t < 5000; ++t) {
    total += h.Sample(wnum, BigUInt(uint64_t{1}), rng).size();
  }
  EXPECT_EQ(total, 0u);
}

TEST(HaltStructureTest, FloatWeightsAcrossHundredsOfBuckets) {
  Recorder rec;
  HaltStructure h(4, &rec);
  std::map<uint64_t, Weight> items;
  uint64_t handle = 0;
  for (uint32_t e = 0; e < 250; e += 7) {
    items[handle] = Weight(3, e);
    h.Insert(handle, Weight(3, e));
    ++handle;
  }
  h.CheckInvariants();
  // W = 2^250: the top item (3·2^245) has p = 3/32.
  RandomEngine rng(6);
  const BigUInt wnum = BigUInt::PowerOfTwo(250);
  const uint64_t trials = 60000;
  uint64_t top_hits = 0;
  for (uint64_t t = 0; t < trials; ++t) {
    for (uint64_t x : h.Sample(wnum, BigUInt(uint64_t{1}), rng)) {
      top_hits += x == handle - 1;
    }
  }
  EXPECT_LE(std::abs(BernoulliZScore(top_hits, trials, 3.0 / 32.0)), 4.5);
}

TEST(HaltStructureTest, MemoryGrowsLinearly) {
  Recorder rec;
  HaltStructure h(8, &rec);
  const size_t base = h.ApproxMemoryBytes();
  for (uint64_t i = 0; i < 10000; ++i) h.Insert(i, Weight(1 + i % 97, 0));
  const size_t grown = h.ApproxMemoryBytes();
  EXPECT_GT(grown, base);
  // Well under 200 bytes/item for the structure itself.
  EXPECT_LT(grown - base, 10000u * 200u);
}

TEST(HaltStructureTest, LookupTableRowsStayBounded) {
  Recorder rec;
  HaltStructure h(8, &rec);
  RandomEngine rng(7);
  RandomEngine wgen(8);
  for (uint64_t i = 0; i < 3000; ++i) {
    h.Insert(i, Weight(1 + wgen.NextBelow(uint64_t{1} << 40), 0));
  }
  for (int q = 0; q < 3000; ++q) {
    const BigUInt wnum = BigUInt::PowerOfTwo(30 + (q % 25));
    h.Sample(wnum, BigUInt(uint64_t{1}), rng);
  }
  // The number of distinct configurations touched is tiny compared to the
  // (m+1)^K possible rows.
  EXPECT_LE(h.lookup_table().CachedRows(), 4000u);
  EXPECT_GT(h.lookup_table().CachedRows(), 0u);
}

}  // namespace
}  // namespace dpss
