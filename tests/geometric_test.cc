// Statistical tests for B-Geo(p, n) and T-Geo(p, n): full-pmf chi-square
// against the exact distributions across all algorithmic regimes (p >= 1/2,
// block path, capped-block path; T-Geo cases n<=2, np>=1, np<1).

#include "random/geometric.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "util/random.h"

namespace dpss {
namespace {

std::vector<double> BoundedGeoPmf(double p, uint64_t n) {
  std::vector<double> pmf(n + 1, 0.0);  // index 1..n
  double tail = 1.0;
  for (uint64_t i = 1; i < n; ++i) {
    pmf[i] = tail * p;
    tail *= (1.0 - p);
  }
  pmf[n] = tail;  // (1-p)^(n-1)
  return pmf;
}

std::vector<double> TruncatedGeoPmf(double p, uint64_t n) {
  std::vector<double> pmf(n + 1, 0.0);
  const double norm = 1.0 - std::pow(1.0 - p, static_cast<double>(n));
  double cur = p;
  for (uint64_t i = 1; i <= n; ++i) {
    pmf[i] = cur / norm;
    cur *= (1.0 - p);
  }
  return pmf;
}

void RunPmfTest(bool truncated, uint64_t pnum, uint64_t pden, uint64_t n,
                uint64_t trials, uint64_t seed) {
  RandomEngine rng(seed);
  const BigUInt bn(pnum), bd(pden);
  std::vector<uint64_t> counts(n + 1, 0);
  for (uint64_t i = 0; i < trials; ++i) {
    const uint64_t v = truncated ? SampleTruncatedGeo(bn, bd, n, rng)
                                 : SampleBoundedGeo(bn, bd, n, rng);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, n);
    counts[v]++;
  }
  const double p = static_cast<double>(pnum) / static_cast<double>(pden);
  const std::vector<double> pmf =
      truncated ? TruncatedGeoPmf(p, n) : BoundedGeoPmf(p, n);
  // Drop the unused 0 slot.
  std::vector<uint64_t> obs(counts.begin() + 1, counts.end());
  std::vector<double> expd(pmf.begin() + 1, pmf.end());
  int dof = 0;
  const double chi = testing_util::ChiSquare(obs, expd, trials, &dof);
  EXPECT_LE(chi, testing_util::ChiSquareGate(dof))
      << (truncated ? "T-Geo(" : "B-Geo(") << pnum << "/" << pden << ", " << n
      << ")";
}

struct GeoParam {
  uint64_t pnum, pden, n;
};

class BoundedGeoParamTest : public ::testing::TestWithParam<GeoParam> {};

TEST_P(BoundedGeoParamTest, PmfMatches) {
  const auto& pr = GetParam();
  RunPmfTest(/*truncated=*/false, pr.pnum, pr.pden, pr.n, 150000,
             13 + pr.pnum * 7 + pr.pden * 3 + pr.n);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, BoundedGeoParamTest,
    ::testing::Values(GeoParam{3, 4, 10},     // p >= 1/2: direct trials
                      GeoParam{1, 2, 6},      // boundary p = 1/2
                      GeoParam{1, 3, 12},     // block path, small block
                      GeoParam{1, 10, 40},    // block path
                      GeoParam{1, 100, 50},   // capped block (b ~ n)
                      GeoParam{1, 1000, 20},  // heavy cap: Pr[n] dominates
                      GeoParam{9, 10, 5},     // near-certain success
                      GeoParam{1, 7, 1}));    // n == 1

TEST(BoundedGeoTest, DegenerateParameters) {
  RandomEngine rng(99);
  // p >= 1 always yields 1.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(SampleBoundedGeo(BigUInt(uint64_t{5}), BigUInt(uint64_t{3}), 10, rng), 1u);
    EXPECT_EQ(SampleBoundedGeo(BigUInt(uint64_t{1}), BigUInt(uint64_t{1}), 10, rng), 1u);
  }
  // p == 0 always yields n.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(SampleBoundedGeo(BigUInt(), BigUInt(uint64_t{3}), 17, rng), 17u);
  }
}

TEST(BoundedGeoTest, MultiWordProbability) {
  // p = 1 / 2^80: result is n with overwhelming probability.
  RandomEngine rng(100);
  const BigUInt num(uint64_t{1});
  const BigUInt den = BigUInt::PowerOfTwo(80);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SampleBoundedGeo(num, den, 1000, rng), 1000u);
  }
}

TEST(BoundedGeoTest, MeanMatchesLargeN) {
  // For n >> 1/p the truncation is immaterial: E ~ 1/p.
  RandomEngine rng(101);
  const uint64_t kTrials = 60000;
  double sum = 0;
  for (uint64_t i = 0; i < kTrials; ++i) {
    sum += static_cast<double>(
        SampleBoundedGeo(BigUInt(uint64_t{1}), BigUInt(uint64_t{50}), 5000, rng));
  }
  const double mean = sum / static_cast<double>(kTrials);
  // sd of the sample mean ~ sqrt(1-p)/p/sqrt(trials) ~ 0.2
  EXPECT_NEAR(mean, 50.0, 1.0);
}

class TruncatedGeoParamTest : public ::testing::TestWithParam<GeoParam> {};

TEST_P(TruncatedGeoParamTest, PmfMatches) {
  const auto& pr = GetParam();
  RunPmfTest(/*truncated=*/true, pr.pnum, pr.pden, pr.n, 150000,
             517 + pr.pnum * 7 + pr.pden * 3 + pr.n);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, TruncatedGeoParamTest,
    ::testing::Values(GeoParam{1, 3, 1},      // Case 1: n == 1
                      GeoParam{1, 3, 2},      // Case 1: n == 2
                      GeoParam{2, 3, 2},      // Case 1: n == 2, large p
                      GeoParam{1, 2, 8},      // Case 2.1: np >= 1
                      GeoParam{1, 5, 15},     // Case 2.1
                      GeoParam{1, 4, 4},      // Case 2.1 boundary np = 1
                      GeoParam{1, 10, 5},     // Case 2.2: np < 1
                      GeoParam{1, 100, 30},   // Case 2.2
                      GeoParam{1, 50, 3},     // Case 2.2 minimum n = 3
                      GeoParam{1, 1000, 8})); // Case 2.2, tiny p

TEST(TruncatedGeoTest, PGreaterEqualOneReturnsOne) {
  RandomEngine rng(102);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(SampleTruncatedGeo(BigUInt(uint64_t{7}), BigUInt(uint64_t{7}), 9, rng), 1u);
    EXPECT_EQ(SampleTruncatedGeo(BigUInt(uint64_t{9}), BigUInt(uint64_t{7}), 9, rng), 1u);
  }
}

TEST(TruncatedGeoTest, TinyProbabilityIsNearUniform) {
  // As p -> 0 the truncated geometric approaches Uniform{1..n}.
  RandomEngine rng(103);
  const uint64_t n = 8;
  const uint64_t kTrials = 80000;
  std::vector<uint64_t> counts(n + 1, 0);
  const BigUInt num(uint64_t{1});
  const BigUInt den = BigUInt::PowerOfTwo(40);
  for (uint64_t i = 0; i < kTrials; ++i) {
    counts[SampleTruncatedGeo(num, den, n, rng)]++;
  }
  for (uint64_t v = 1; v <= n; ++v) {
    const double z = testing_util::BernoulliZScore(counts[v], kTrials,
                                                   1.0 / static_cast<double>(n));
    EXPECT_LE(std::abs(z), 4.5) << v;
  }
}

TEST(TruncatedGeoTest, MultiWordProbability) {
  // Exercise BigUInt paths: p = 2^70 / 2^72 = 1/4 with n = 6 (np >= 1).
  RunPmfTest(/*truncated=*/true, 1, 4, 6, 100000, 999);
  RandomEngine rng(104);
  const BigUInt num = BigUInt::PowerOfTwo(70);
  const BigUInt den = BigUInt::PowerOfTwo(72);
  std::vector<uint64_t> counts(7, 0);
  for (int i = 0; i < 100000; ++i) {
    counts[SampleTruncatedGeo(num, den, 6, rng)]++;
  }
  const auto pmf = TruncatedGeoPmf(0.25, 6);
  std::vector<uint64_t> obs(counts.begin() + 1, counts.end());
  std::vector<double> expd(pmf.begin() + 1, pmf.end());
  int dof = 0;
  const double chi = testing_util::ChiSquare(obs, expd, 100000, &dof);
  EXPECT_LE(chi, testing_util::ChiSquareGate(dof));
}

}  // namespace
}  // namespace dpss
