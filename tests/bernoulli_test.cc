// Statistical tests for the exact Bernoulli generators. Fixed seeds; all
// gates are >= 4.5 sigma so a correct implementation passes deterministically
// while systematic bias is caught.

#include "random/bernoulli.h"

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "util/random.h"

namespace dpss {
namespace {

using testing_util::BernoulliZScore;

TEST(RandomBigTest, RandomBigBitsRange) {
  RandomEngine rng(1);
  for (int bits : {0, 1, 7, 64, 65, 130, 256}) {
    for (int iter = 0; iter < 50; ++iter) {
      const BigUInt v = RandomBigBits(rng, bits);
      EXPECT_LE(v.BitLength(), bits);
    }
  }
}

TEST(RandomBigTest, RandomBigBelowIsUniform) {
  RandomEngine rng(2);
  // Bound straddling a word boundary.
  const BigUInt bound = BigUInt::FromU128((static_cast<unsigned __int128>(3) << 64));
  const int kBuckets = 12;
  std::vector<uint64_t> counts(kBuckets, 0);
  const int kTrials = 120000;
  const BigUInt step = BigUInt::Div(bound, BigUInt(uint64_t{kBuckets}));
  for (int i = 0; i < kTrials; ++i) {
    const BigUInt v = RandomBigBelow(bound, rng);
    EXPECT_LT(BigUInt::Compare(v, bound), 0);
    const uint64_t b = BigUInt::Div(v, step).ToU64();
    counts[std::min<uint64_t>(b, kBuckets - 1)]++;
  }
  std::vector<double> expected(kBuckets, 1.0 / kBuckets);
  int dof = 0;
  const double chi = testing_util::ChiSquare(counts, expected, kTrials, &dof);
  EXPECT_LE(chi, testing_util::ChiSquareGate(dof));
}

TEST(BernoulliRationalTest, DegenerateProbabilities) {
  RandomEngine rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(SampleBernoulliRational(BigUInt(), BigUInt(uint64_t{5}), rng));
    EXPECT_TRUE(SampleBernoulliRational(BigUInt(uint64_t{5}),
                                        BigUInt(uint64_t{5}), rng));
    EXPECT_TRUE(SampleBernoulliRational(BigUInt(uint64_t{9}),
                                        BigUInt(uint64_t{5}), rng));
  }
}

class BernoulliRationalParamTest
    : public ::testing::TestWithParam<std::pair<uint64_t, uint64_t>> {};

TEST_P(BernoulliRationalParamTest, FrequencyMatches) {
  const auto [num, den] = GetParam();
  RandomEngine rng(4000 + num * 131 + den);
  const uint64_t kTrials = 200000;
  uint64_t hits = 0;
  for (uint64_t i = 0; i < kTrials; ++i) {
    hits += SampleBernoulliRational(BigUInt(num), BigUInt(den), rng) ? 1 : 0;
  }
  const double p = static_cast<double>(num) / static_cast<double>(den);
  EXPECT_LE(std::abs(BernoulliZScore(hits, kTrials, p)), 4.5)
      << num << "/" << den;
}

INSTANTIATE_TEST_SUITE_P(
    Probabilities, BernoulliRationalParamTest,
    ::testing::Values(std::pair<uint64_t, uint64_t>{1, 2},
                      std::pair<uint64_t, uint64_t>{1, 3},
                      std::pair<uint64_t, uint64_t>{2, 3},
                      std::pair<uint64_t, uint64_t>{1, 100},
                      std::pair<uint64_t, uint64_t>{99, 100},
                      std::pair<uint64_t, uint64_t>{7, 13},
                      std::pair<uint64_t, uint64_t>{1, 7919},
                      std::pair<uint64_t, uint64_t>{123456789, 987654321}));

TEST(BernoulliRationalTest, MultiWordDenominator) {
  // p = 2^100 / (3 * 2^100) = 1/3 with multi-word terms.
  RandomEngine rng(5);
  const BigUInt num = BigUInt::PowerOfTwo(100);
  const BigUInt den = BigUInt::MulU64(num, 3);
  const uint64_t kTrials = 150000;
  uint64_t hits = 0;
  for (uint64_t i = 0; i < kTrials; ++i) {
    hits += SampleBernoulliRational(num, den, rng) ? 1 : 0;
  }
  EXPECT_LE(std::abs(BernoulliZScore(hits, kTrials, 1.0 / 3.0)), 4.5);
}

TEST(BernoulliApproxTest, ResolvesExactDyadic) {
  // p = 1/4 supplied as a zero-width enclosure.
  RandomEngine rng(6);
  auto approx = [](int t) {
    FixedInterval enc;
    enc.frac_bits = t;
    enc.lo = BigUInt::PowerOfTwo(t - 2);
    enc.hi = enc.lo;
    return enc;
  };
  const uint64_t kTrials = 200000;
  uint64_t hits = 0;
  for (uint64_t i = 0; i < kTrials; ++i) {
    hits += SampleBernoulliApprox(approx, rng) ? 1 : 0;
  }
  EXPECT_LE(std::abs(BernoulliZScore(hits, kTrials, 0.25)), 4.5);
}

class BernoulliPowParamTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t, uint64_t>> {
};

TEST_P(BernoulliPowParamTest, FrequencyMatches) {
  const auto [num, den, m] = GetParam();
  RandomEngine rng(6000 + num * 7 + den * 31 + m);
  const uint64_t kTrials = 150000;
  uint64_t hits = 0;
  for (uint64_t i = 0; i < kTrials; ++i) {
    hits += SampleBernoulliPow(BigUInt(num), BigUInt(den), m, rng) ? 1 : 0;
  }
  const double p =
      std::pow(static_cast<double>(num) / den, static_cast<double>(m));
  EXPECT_LE(std::abs(BernoulliZScore(hits, kTrials, p)), 4.5)
      << "(" << num << "/" << den << ")^" << m;
}

INSTANTIATE_TEST_SUITE_P(
    Powers, BernoulliPowParamTest,
    ::testing::Values(std::tuple<uint64_t, uint64_t, uint64_t>{1, 2, 3},
                      std::tuple<uint64_t, uint64_t, uint64_t>{9, 10, 10},
                      std::tuple<uint64_t, uint64_t, uint64_t>{99, 100, 50},
                      std::tuple<uint64_t, uint64_t, uint64_t>{999, 1000, 693},
                      std::tuple<uint64_t, uint64_t, uint64_t>{1, 3, 1},
                      std::tuple<uint64_t, uint64_t, uint64_t>{3, 4, 7}));

TEST(BernoulliPowTest, HugeExponentIsAlmostSurelyFalse) {
  RandomEngine rng(7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(SampleBernoulliPow(BigUInt(uint64_t{1}), BigUInt(uint64_t{2}),
                                    uint64_t{1} << 50, rng));
  }
}

double PStarReference(double q, uint64_t n) {
  return (1.0 - std::pow(1.0 - q, static_cast<double>(n))) /
         (static_cast<double>(n) * q);
}

class BernoulliPStarParamTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t, uint64_t>> {
};

TEST_P(BernoulliPStarParamTest, TypeIIFrequencyMatches) {
  const auto [qnum, qden, n] = GetParam();
  RandomEngine rng(8000 + qnum * 3 + qden * 17 + n);
  const uint64_t kTrials = 120000;
  uint64_t hits = 0;
  for (uint64_t i = 0; i < kTrials; ++i) {
    hits += SampleBernoulliPStar(BigUInt(qnum), BigUInt(qden), n, rng) ? 1 : 0;
  }
  const double p = PStarReference(static_cast<double>(qnum) / qden, n);
  EXPECT_LE(std::abs(BernoulliZScore(hits, kTrials, p)), 4.5);
}

TEST_P(BernoulliPStarParamTest, TypeIIIFrequencyMatches) {
  const auto [qnum, qden, n] = GetParam();
  RandomEngine rng(9000 + qnum * 3 + qden * 17 + n);
  const uint64_t kTrials = 120000;
  uint64_t hits = 0;
  for (uint64_t i = 0; i < kTrials; ++i) {
    hits += SampleBernoulliHalfRecipPStar(BigUInt(qnum), BigUInt(qden), n, rng)
                ? 1
                : 0;
  }
  const double p =
      1.0 / (2.0 * PStarReference(static_cast<double>(qnum) / qden, n));
  EXPECT_LE(std::abs(BernoulliZScore(hits, kTrials, p)), 4.5);
}

// All parameters satisfy n*q <= 1 as Theorem 3.1 requires.
INSTANTIATE_TEST_SUITE_P(
    PStarParams, BernoulliPStarParamTest,
    ::testing::Values(std::tuple<uint64_t, uint64_t, uint64_t>{1, 2, 2},
                      std::tuple<uint64_t, uint64_t, uint64_t>{1, 10, 10},
                      std::tuple<uint64_t, uint64_t, uint64_t>{1, 100, 37},
                      std::tuple<uint64_t, uint64_t, uint64_t>{3, 1000, 300},
                      std::tuple<uint64_t, uint64_t, uint64_t>{1, 7, 1},
                      std::tuple<uint64_t, uint64_t, uint64_t>{1, 1000000, 999999}));

}  // namespace
}  // namespace dpss
