// End-to-end tests for DpssSampler (the HALT structure): exact inclusion
// probabilities under diverse weights and query parameters, independence,
// dynamic update sequences mirrored against a reference, rebuild behaviour,
// and structural invariants.

#include "core/dpss_sampler.h"

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "util/random.h"

namespace dpss {
namespace {

using testing_util::BernoulliZScore;

double ExactProb(Weight w, const BigUInt& wnum, const BigUInt& wden) {
  if (w.IsZero()) return 0.0;
  if (wnum.IsZero()) return 1.0;
  const double inv_w = BigRational(wden, wnum).ToDouble();
  const double p = static_cast<double>(w.mult) * inv_w *
                   std::exp2(static_cast<double>(w.exp));
  return p < 1.0 ? p : 1.0;
}

// Runs `trials` queries and z-tests each item's inclusion frequency against
// its exact probability.
void CheckFrequencies(DpssSampler& s, Rational64 alpha, Rational64 beta,
                      const std::vector<DpssSampler::ItemId>& ids,
                      uint64_t trials, uint64_t seed) {
  BigUInt wnum, wden;
  s.ComputeW(alpha, beta, &wnum, &wden);
  std::map<DpssSampler::ItemId, uint64_t> hits;
  for (auto id : ids) hits[id] = 0;
  RandomEngine rng(seed);
  for (uint64_t t = 0; t < trials; ++t) {
    for (auto id : s.Sample(alpha, beta, rng)) {
      auto it = hits.find(id);
      if (it != hits.end()) ++it->second;
    }
  }
  for (auto id : ids) {
    const double p = ExactProb(s.GetWeight(id), wnum, wden);
    const double z = BernoulliZScore(hits[id], trials, p);
    EXPECT_LE(std::abs(z), 4.75)
        << "item " << id << " w.mult=" << s.GetWeight(id).mult
        << " w.exp=" << s.GetWeight(id).exp << " p=" << p
        << " hits=" << hits[id] << "/" << trials;
  }
}

TEST(DpssSamplerTest, EmptySetReturnsEmpty) {
  DpssSampler s(1);
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.Sample({1, 1}, {0, 1}).empty());
  EXPECT_EQ(s.ExpectedSampleSize({1, 1}, {0, 1}), 0.0);
  s.CheckInvariants();
}

TEST(DpssSamplerTest, SingleItemAlphaOneBetaZeroIsCertain) {
  DpssSampler s(2);
  const auto id = s.Insert(7);
  // W = Σw = 7, p = min(7/7, 1) = 1.
  for (int i = 0; i < 100; ++i) {
    const auto t = s.Sample({1, 1}, {0, 1});
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], id);
  }
  s.CheckInvariants();
}

TEST(DpssSamplerTest, WZeroSelectsAllNonzeroItems) {
  DpssSampler s(3);
  const auto a = s.Insert(1);
  const auto b = s.Insert(1000);
  const auto z = s.Insert(0);
  const auto t = s.Sample({0, 1}, {0, 1});
  EXPECT_EQ(t.size(), 2u);
  bool has_a = false, has_b = false, has_z = false;
  for (auto id : t) {
    has_a |= id == a;
    has_b |= id == b;
    has_z |= id == z;
  }
  EXPECT_TRUE(has_a && has_b);
  EXPECT_FALSE(has_z);
}

TEST(DpssSamplerTest, ZeroWeightItemsAreNeverSampled) {
  DpssSampler s(4);
  std::vector<DpssSampler::ItemId> zeros;
  for (int i = 0; i < 10; ++i) zeros.push_back(s.Insert(0));
  s.Insert(5);
  for (int i = 0; i < 200; ++i) {
    for (auto id : s.Sample({1, 2}, {1, 7})) {
      for (auto zid : zeros) EXPECT_NE(id, zid);
    }
  }
  s.CheckInvariants();
}

TEST(DpssSamplerTest, HugeBetaMakesSamplesRare) {
  DpssSampler s(5);
  for (int i = 0; i < 50; ++i) s.Insert(1 + i);
  // β = 2^62: p_x ~ w/2^62, μ ~ 3e-16.
  uint64_t total = 0;
  for (int i = 0; i < 1000; ++i) {
    total += s.Sample({0, 1}, {uint64_t{1} << 62, 1}).size();
  }
  EXPECT_EQ(total, 0u);
}

TEST(DpssSamplerTest, FrequenciesSpreadWeights) {
  // Weights spanning many buckets; α = 1, β = 0 (classic w/Σw scaled).
  DpssSampler s(6);
  std::vector<DpssSampler::ItemId> ids;
  for (int e = 0; e <= 20; e += 2) {
    ids.push_back(s.Insert(uint64_t{1} << e));
    ids.push_back(s.Insert((uint64_t{1} << e) + (uint64_t{1} << (e / 2))));
  }
  CheckFrequencies(s, {1, 1}, {0, 1}, ids, 60000, 1001);
  s.CheckInvariants();
}

struct ParamCase {
  Rational64 alpha;
  Rational64 beta;
};

class DpssSamplerParamTest : public ::testing::TestWithParam<ParamCase> {};

TEST_P(DpssSamplerParamTest, FrequenciesAcrossParameters) {
  const ParamCase& pc = GetParam();
  DpssSampler s(7);
  RandomEngine wgen(99);
  std::vector<DpssSampler::ItemId> ids;
  // A mix: tiny, mid, huge, duplicate weights.
  for (int i = 0; i < 12; ++i) ids.push_back(s.Insert(1 + wgen.NextBelow(7)));
  for (int i = 0; i < 12; ++i) {
    ids.push_back(s.Insert(1000 + wgen.NextBelow(9000)));
  }
  for (int i = 0; i < 6; ++i) {
    ids.push_back(s.Insert(uint64_t{1} << (30 + i)));
  }
  for (int i = 0; i < 5; ++i) ids.push_back(s.Insert(4096));
  CheckFrequencies(s, pc.alpha, pc.beta, ids, 50000,
                   2000 + pc.alpha.num * 7 + pc.beta.num);
  s.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Parameters, DpssSamplerParamTest,
    ::testing::Values(ParamCase{{1, 1}, {0, 1}},          // w/Σw
                      ParamCase{{1, 1}, {1, 1}},          // w/(Σw+1)
                      ParamCase{{3, 2}, {1000000, 1}},    // mixed
                      ParamCase{{0, 1}, {1u << 20, 1}},   // fixed denominator
                      ParamCase{{0, 1}, {100, 1}},        // many certain items
                      ParamCase{{1, 1000000}, {0, 1}},    // α << 1: certain+
                      ParamCase{{7, 3}, {5, 9}},          // awkward rationals
                      ParamCase{{1000000007, 1}, {0, 1}}  // huge α: tiny p
                      ));

TEST(DpssSamplerTest, PowerOfTwoExponentWeights) {
  // The Theorem 1.2 "float" regime: weights 2^a with large exponents.
  DpssSampler s(8);
  std::vector<DpssSampler::ItemId> ids;
  for (uint32_t a : {0u, 5u, 17u, 80u, 81u, 120u, 200u}) {
    ids.push_back(s.InsertWeight(Weight(1, a)));
  }
  // α = 1, β = 0: the largest item dominates; p_largest >= 1/2.
  BigUInt wnum, wden;
  s.ComputeW({1, 1}, {0, 1}, &wnum, &wden);
  EXPECT_GE(ExactProb(Weight(1, 200), wnum, wden), 0.5);
  CheckFrequencies(s, {1, 1}, {0, 1}, ids, 60000, 3001);
  s.CheckInvariants();
}

TEST(DpssSamplerTest, MaxWordWeights) {
  DpssSampler s(9);
  std::vector<DpssSampler::ItemId> ids;
  ids.push_back(s.Insert(~uint64_t{0}));          // 2^64 - 1
  ids.push_back(s.Insert(uint64_t{1} << 63));
  ids.push_back(s.Insert(1));
  CheckFrequencies(s, {1, 1}, {0, 1}, ids, 50000, 3501);
  s.CheckInvariants();
}

TEST(DpssSamplerTest, MediumSetMeanSampleSize) {
  // n = 2000 items; checks E[|T|] = μ via the sample mean.
  std::vector<uint64_t> weights;
  RandomEngine wgen(5);
  for (int i = 0; i < 2000; ++i) weights.push_back(1 + wgen.NextBelow(1000));
  DpssSampler s(weights, 10);
  const Rational64 alpha{1, 10};
  const Rational64 beta{12345, 1};
  const double mu = s.ExpectedSampleSize(alpha, beta);
  ASSERT_GT(mu, 1.0);
  RandomEngine rng(11);
  const uint64_t trials = 30000;
  uint64_t total = 0;
  for (uint64_t t = 0; t < trials; ++t) {
    total += s.Sample(alpha, beta, rng).size();
  }
  const double mean = static_cast<double>(total) / trials;
  // Var(|T|) <= μ; allow 4.75 sigma.
  const double sigma = std::sqrt(mu / trials);
  EXPECT_NEAR(mean, mu, 4.75 * sigma);
  s.CheckInvariants();
}

TEST(DpssSamplerTest, PairwiseIndependenceSameBucket) {
  // Two equal-weight items land in the same bucket and are visited by the
  // same geometric jump chain; their inclusions must still be independent.
  DpssSampler s(12);
  const auto a = s.Insert(64);
  const auto b = s.Insert(65);
  for (int i = 0; i < 30; ++i) s.Insert(3);  // background
  const Rational64 alpha{1, 1};
  const Rational64 beta{0, 1};
  BigUInt wnum, wden;
  s.ComputeW(alpha, beta, &wnum, &wden);
  const double pa = ExactProb(s.GetWeight(a), wnum, wden);
  const double pb = ExactProb(s.GetWeight(b), wnum, wden);
  RandomEngine rng(13);
  const uint64_t trials = 120000;
  uint64_t joint = 0, hits_a = 0, hits_b = 0;
  for (uint64_t t = 0; t < trials; ++t) {
    bool ia = false, ib = false;
    for (auto id : s.Sample(alpha, beta, rng)) {
      ia |= id == a;
      ib |= id == b;
    }
    hits_a += ia;
    hits_b += ib;
    joint += ia && ib;
  }
  EXPECT_LE(std::abs(BernoulliZScore(hits_a, trials, pa)), 4.75);
  EXPECT_LE(std::abs(BernoulliZScore(hits_b, trials, pb)), 4.75);
  EXPECT_LE(std::abs(BernoulliZScore(joint, trials, pa * pb)), 4.75);
}

TEST(DpssSamplerTest, DynamicSequenceKeepsInvariantsAndDistribution) {
  DpssSampler s(14);
  RandomEngine rng(15);
  std::vector<DpssSampler::ItemId> live;
  for (int step = 0; step < 4000; ++step) {
    const uint64_t op = rng.NextBelow(100);
    if (op < 60 || live.empty()) {
      const uint64_t w = rng.NextBelow(10) == 0 ? 0 : 1 + rng.NextBelow(1u << 30);
      live.push_back(s.Insert(w));
    } else {
      const size_t idx = rng.NextBelow(live.size());
      s.Erase(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
    if (step % 500 == 0) s.CheckInvariants();
  }
  s.CheckInvariants();
  EXPECT_EQ(s.size(), live.size());
  // Distribution is still exact after heavy churn.
  std::vector<DpssSampler::ItemId> probe(live.begin(),
                                         live.begin() + std::min<size_t>(
                                                            live.size(), 25));
  CheckFrequencies(s, {2, 3}, {50, 1}, probe, 40000, 4001);
}

TEST(DpssSamplerTest, GrowShrinkTriggersRebuilds) {
  DpssSampler s(16);
  std::vector<DpssSampler::ItemId> ids;
  for (int i = 0; i < 3000; ++i) ids.push_back(s.Insert(1 + (i % 97)));
  EXPECT_GT(s.rebuild_count(), 0u);
  const uint64_t grown_rebuilds = s.rebuild_count();
  s.CheckInvariants();
  for (int i = 0; i < 2900; ++i) {
    s.Erase(ids[i]);
  }
  EXPECT_GT(s.rebuild_count(), grown_rebuilds);
  s.CheckInvariants();
  std::vector<DpssSampler::ItemId> rest(ids.begin() + 2900, ids.end());
  CheckFrequencies(s, {1, 1}, {0, 1}, rest, 40000, 5001);
}

TEST(DpssSamplerTest, EraseAndReinsertReusesSlotsWithFreshIds) {
  DpssSampler s(17);
  const auto a = s.Insert(10);
  s.Erase(a);
  EXPECT_FALSE(s.Contains(a));
  const auto b = s.Insert(20);
  // The slot is reused, but the generation bump makes the id distinct, so
  // the stale id cannot alias the new item.
  EXPECT_EQ(DpssSampler::SlotIndexOf(a), DpssSampler::SlotIndexOf(b));
  EXPECT_NE(a, b);
  EXPECT_EQ(DpssSampler::GenerationOf(b), DpssSampler::GenerationOf(a) + 1);
  EXPECT_FALSE(s.Contains(a));
  EXPECT_TRUE(s.Contains(b));
  EXPECT_EQ(s.GetWeight(b).mult, 20u);
  s.CheckInvariants();
}

TEST(DpssSamplerTest, StaleIdNeverAliasesSlotReuse) {
  // Regression for the erase-reuse-erase sequence: before id generations,
  // Erase(a) + Insert handed the same id back, so a retained stale `a`
  // silently Contains()ed — and could Erase() — the wrong item.
  DpssSampler s(18);
  const auto a = s.Insert(10);
  const auto keep = s.Insert(77);
  s.Erase(a);
  const auto b = s.Insert(20);  // reuses a's slot
  ASSERT_EQ(DpssSampler::SlotIndexOf(a), DpssSampler::SlotIndexOf(b));
  EXPECT_FALSE(s.Contains(a));  // stale id stays stale
  EXPECT_TRUE(s.Contains(b));
  EXPECT_EQ(s.size(), 2u);
  // Several reuse rounds keep producing distinct ids for the same slot.
  auto prev = b;
  for (int round = 0; round < 5; ++round) {
    s.Erase(prev);
    const auto next = s.Insert(30 + round);
    EXPECT_EQ(DpssSampler::SlotIndexOf(next), DpssSampler::SlotIndexOf(b));
    EXPECT_NE(next, prev);
    EXPECT_FALSE(s.Contains(prev));
    prev = next;
  }
  EXPECT_TRUE(s.Contains(keep));
  EXPECT_EQ(s.GetWeight(keep).mult, 77u);
  s.CheckInvariants();
}

TEST(DpssSamplerTest, SetWeightSameBucketPatchesInPlace) {
  DpssSampler s(40);
  const auto a = s.Insert(64);   // bucket 6
  const auto b = s.Insert(100);  // bucket 6
  s.Insert(3);
  // 64 -> 100 stays in bucket [64, 128): in-place patch.
  s.SetWeight(a, 100);
  EXPECT_EQ(s.GetWeight(a).mult, 100u);
  EXPECT_EQ(s.total_weight(), BigUInt(uint64_t{203}));
  s.CheckInvariants();
  // Ids keep working, including the untouched neighbour.
  EXPECT_TRUE(s.Contains(a));
  EXPECT_EQ(s.GetWeight(b).mult, 100u);
  CheckFrequencies(s, {1, 1}, {0, 1}, {a, b}, 40000, 4100);
}

TEST(DpssSamplerTest, SetWeightAcrossBucketsPreservesId) {
  DpssSampler s(41);
  const auto a = s.Insert(7);
  const auto b = s.Insert(1000);
  s.SetWeight(a, uint64_t{1} << 30);  // bucket 2 -> bucket 30
  EXPECT_TRUE(s.Contains(a));
  EXPECT_EQ(s.GetWeight(a).mult, uint64_t{1} << 30);
  s.CheckInvariants();
  s.SetWeight(a, Weight(3, 50));  // float-form weight 3·2^50
  EXPECT_TRUE(s.GetWeight(a) == Weight(3, 50));
  s.CheckInvariants();
  CheckFrequencies(s, {1, 1}, {7, 2}, {a, b}, 40000, 4200);
}

TEST(DpssSamplerTest, SetWeightZeroParksAndRevives) {
  DpssSampler s(42);
  const auto a = s.Insert(500);
  const auto b = s.Insert(11);
  s.SetWeight(a, uint64_t{0});  // parked: never sampled, id stays valid
  EXPECT_TRUE(s.Contains(a));
  EXPECT_TRUE(s.GetWeight(a).IsZero());
  EXPECT_EQ(s.total_weight(), BigUInt(uint64_t{11}));
  for (int i = 0; i < 200; ++i) {
    for (auto id : s.Sample({0, 1}, {1, 1})) EXPECT_NE(id, a);
  }
  s.CheckInvariants();
  s.SetWeight(a, 500);  // revived under the same id
  EXPECT_EQ(s.GetWeight(a).mult, 500u);
  EXPECT_EQ(s.total_weight(), BigUInt(uint64_t{511}));
  s.CheckInvariants();
  CheckFrequencies(s, {1, 1}, {0, 1}, {a, b}, 40000, 4300);
}

TEST(DpssSamplerTest, SetWeightMatchesEraseInsertDistribution) {
  // Drive two samplers through the same logical weight history — one via
  // SetWeight, one via Erase+Insert — and z-test both against the exact
  // probabilities of the final weight set.
  DpssSampler via_set(43), via_reinsert(44);
  RandomEngine mut(45);
  std::vector<DpssSampler::ItemId> set_ids, re_ids;
  std::vector<uint64_t> weights;
  for (int i = 0; i < 48; ++i) {
    const uint64_t w = 1 + mut.NextBelow(uint64_t{1} << 24);
    weights.push_back(w);
    set_ids.push_back(via_set.Insert(w));
    re_ids.push_back(via_reinsert.Insert(w));
  }
  for (int round = 0; round < 400; ++round) {
    const size_t idx = mut.NextBelow(set_ids.size());
    const uint64_t w = 1 + mut.NextBelow(uint64_t{1} << 24);
    weights[idx] = w;
    via_set.SetWeight(set_ids[idx], w);
    via_reinsert.Erase(re_ids[idx]);
    re_ids[idx] = via_reinsert.Insert(w);
  }
  via_set.CheckInvariants();
  via_reinsert.CheckInvariants();
  EXPECT_EQ(via_set.total_weight(), via_reinsert.total_weight());
  CheckFrequencies(via_set, {2, 3}, {100, 1}, set_ids, 40000, 4400);
  CheckFrequencies(via_reinsert, {2, 3}, {100, 1}, re_ids, 40000, 4500);
}

TEST(DpssSamplerTest, ZeroWeightRepresentationsAreCanonical) {
  // Weight{0, e} is the same value as Weight{0, 0}; zero-to-zero
  // transitions with different exp representations must be no-ops, not
  // phantom revivals of a zero weight into the HALT structure.
  DpssSampler s(48);
  const auto a = s.Insert(0);
  s.SetWeight(a, Weight(0, 5));  // still parked
  EXPECT_TRUE(s.GetWeight(a).IsZero());
  const auto b = s.InsertWeight(Weight(0, 7));  // stored canonically
  EXPECT_TRUE(s.GetWeight(b) == Weight());
  s.SetWeight(b, uint64_t{0});  // zero-to-zero via the u64 overload
  EXPECT_TRUE(s.GetWeight(b).IsZero());
  s.CheckInvariants();
  EXPECT_EQ(s.total_weight(), BigUInt());
  s.SetWeight(a, 9);  // genuine revival still works
  EXPECT_EQ(s.GetWeight(a).mult, 9u);
  EXPECT_EQ(s.total_weight(), BigUInt(uint64_t{9}));
  s.CheckInvariants();
}

TEST(DpssSamplerTest, SetWeightOnStaleIdDies) {
  DpssSampler s(46);
  const auto a = s.Insert(10);
  s.Erase(a);
  s.Insert(20);  // reuses the slot under a new generation
  EXPECT_DEATH(s.SetWeight(a, uint64_t{30}), "CHECK failed");
  EXPECT_DEATH(s.GetWeight(a), "CHECK failed");
  EXPECT_DEATH(s.Erase(a), "CHECK failed");
}

TEST(DpssSamplerTest, TotalWeightBigIntFallbackAndRecovery) {
  // Push Σw past 2^128 so the BigUInt fallback takes over, then erase back
  // into u128 range: totals must stay exact across both switches.
  DpssSampler s(47);
  const auto small = s.Insert(123);
  const auto huge1 = s.InsertWeight(Weight(1, 200));  // 2^200
  const auto huge2 = s.InsertWeight(Weight(5, 199));
  BigUInt expect = BigUInt(uint64_t{123}) + (BigUInt(uint64_t{1}) << 200) +
                   (BigUInt(uint64_t{5}) << 199);
  EXPECT_EQ(s.total_weight(), expect);
  s.CheckInvariants();
  s.SetWeight(huge2, Weight(3, 199));  // same bucket, still big
  expect = BigUInt(uint64_t{123}) + (BigUInt(uint64_t{1}) << 200) +
           (BigUInt(uint64_t{3}) << 199);
  EXPECT_EQ(s.total_weight(), expect);
  s.Erase(huge1);
  s.Erase(huge2);
  EXPECT_EQ(s.total_weight(), BigUInt(uint64_t{123}));
  s.CheckInvariants();
  // Back on the fast path: updates keep tracking exactly.
  s.SetWeight(small, 321);
  EXPECT_EQ(s.total_weight(), BigUInt(uint64_t{321}));
  s.CheckInvariants();
}

TEST(DpssSamplerTest, DeterministicWithExternalEngine) {
  std::vector<uint64_t> weights;
  for (int i = 0; i < 200; ++i) weights.push_back(1 + i * i);
  DpssSampler s1(weights, 21), s2(weights, 22);
  RandomEngine r1(77), r2(77);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(s1.Sample({1, 1}, {3, 1}, r1), s2.Sample({1, 1}, {3, 1}, r2));
  }
}

TEST(DpssSamplerTest, TotalWeightTracksUpdates) {
  DpssSampler s(23);
  const auto a = s.Insert(100);
  s.Insert(23);
  EXPECT_EQ(s.total_weight(), BigUInt(uint64_t{123}));
  s.Erase(a);
  EXPECT_EQ(s.total_weight(), BigUInt(uint64_t{23}));
}

TEST(DpssSamplerTest, ExpectedSampleSizeMatchesBruteForce) {
  DpssSampler s(24);
  std::vector<uint64_t> ws = {1, 5, 9, 100, 4096, 70000, 1u << 25};
  double brute = 0;
  for (uint64_t w : ws) s.Insert(w);
  BigUInt wnum, wden;
  const Rational64 alpha{1, 2};
  const Rational64 beta{777, 1};
  s.ComputeW(alpha, beta, &wnum, &wden);
  for (uint64_t w : ws) brute += ExactProb(Weight(w, 0), wnum, wden);
  EXPECT_NEAR(s.ExpectedSampleSize(alpha, beta), brute, 1e-9);
}

TEST(DpssSamplerTest, AllInsignificantRegime) {
  // Huge β drives every item below the 1/N² threshold; queries almost
  // always return empty but must stay exact.
  DpssSampler s(25);
  std::vector<DpssSampler::ItemId> ids;
  for (int i = 0; i < 64; ++i) ids.push_back(s.Insert(1 + i));
  // p_x ~ w / 2^40: μ ~ 2e-9; over 200k trials expect ~0 hits but the
  // mechanism (geometric coin) must not crash or bias.
  RandomEngine rng(26);
  uint64_t total = 0;
  for (int t = 0; t < 200000; ++t) {
    total += s.Sample({0, 1}, {uint64_t{1} << 40, 1}, rng).size();
  }
  EXPECT_LE(total, 3u);
}

TEST(DpssSamplerTest, StressManySmallQueriesWithChurn) {
  DpssSampler s(27);
  RandomEngine rng(28);
  std::vector<DpssSampler::ItemId> live;
  uint64_t sampled = 0;
  for (int round = 0; round < 300; ++round) {
    for (int i = 0; i < 20; ++i) {
      if (!live.empty() && rng.NextBelow(3) == 0) {
        const size_t idx = rng.NextBelow(live.size());
        s.Erase(live[idx]);
        live[idx] = live.back();
        live.pop_back();
      } else {
        live.push_back(s.Insert(1 + rng.NextBelow(1u << 20)));
      }
    }
    sampled += s.Sample({1, 1}, {0, 1}).size();
    sampled += s.Sample({1, 7}, {1, 3}).size();
  }
  EXPECT_GT(sampled, 0u);
  s.CheckInvariants();
}

}  // namespace
}  // namespace dpss
