// Negative-path and fuzz coverage for the dpss-serverd wire protocol
// (server/protocol.h) — the robustness contract: malformed bytes NEVER
// abort the decoder or the server. Framing violations (bad CRC, oversized
// length) poison the stream and the server must disconnect; CRC-valid but
// malformed bodies get a kProtocolError response on a connection that
// lives on. The whole file runs under ASan/UBSan in CI.

#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "persist/crc32c.h"
#include "persist/env.h"
#include "util/little_endian.h"
#include "util/random.h"

namespace dpss {
namespace server {
namespace {

Request MakeSampleRequest() {
  Request req;
  req.type = MsgType::kSample;
  req.seq = 77;
  req.alpha = Rational64{3, 7};
  req.beta = Rational64{1, 9};
  req.max_ids = 123;
  return req;
}

std::string EncodeOne(const Request& req) {
  std::string out;
  EncodeRequest(req, &out);
  return out;
}

// --- Codec round trips ----------------------------------------------------

TEST(ServerProtocolTest, RequestRoundTripsEveryType) {
  std::vector<Request> reqs;
  {
    Request r;
    r.type = MsgType::kPing;
    r.seq = 1;
    reqs.push_back(r);
    r = Request();
    r.type = MsgType::kInsert;
    r.seq = 2;
    r.weight = Weight{41, 0};
    reqs.push_back(r);
    r = Request();
    r.type = MsgType::kInsertW;
    r.seq = 3;
    r.weight = Weight{5, 17};
    reqs.push_back(r);
    r = Request();
    r.type = MsgType::kErase;
    r.seq = 4;
    r.id = 0xdeadbeefull;
    reqs.push_back(r);
    r = Request();
    r.type = MsgType::kSetWeight;
    r.seq = 5;
    r.id = 9;
    r.weight = Weight{10, 3};
    reqs.push_back(r);
    r = Request();
    r.type = MsgType::kGetWeight;
    r.seq = 6;
    r.id = 12;
    reqs.push_back(r);
    reqs.push_back(MakeSampleRequest());
    r = Request();
    r.type = MsgType::kStats;
    r.seq = 8;
    reqs.push_back(r);
  }
  for (const Request& req : reqs) {
    const std::string bytes = EncodeOne(req);
    size_t pos = 0;
    std::string_view payload;
    ASSERT_EQ(ExtractFrame(bytes, &pos, &payload), FrameResult::kFrame);
    EXPECT_EQ(pos, bytes.size());
    Request got;
    ASSERT_TRUE(DecodeRequest(payload, &got))
        << "type " << static_cast<int>(req.type);
    EXPECT_EQ(got.type, req.type);
    EXPECT_EQ(got.seq, req.seq);
    EXPECT_EQ(got.id, req.id);
    EXPECT_EQ(got.weight.mult, req.weight.mult);
    EXPECT_EQ(got.weight.exp, req.weight.exp);
    EXPECT_EQ(got.alpha.num, req.alpha.num);
    EXPECT_EQ(got.alpha.den, req.alpha.den);
    EXPECT_EQ(got.beta.num, req.beta.num);
    EXPECT_EQ(got.beta.den, req.beta.den);
    EXPECT_EQ(got.max_ids, req.max_ids);
  }
}

TEST(ServerProtocolTest, ResponseRoundTripsEveryShape) {
  std::vector<Response> resps;
  {
    Response r;
    r.seq = 10;
    r.request_type = MsgType::kPing;
    resps.push_back(r);
    r = Response();
    r.seq = 11;
    r.request_type = MsgType::kInsert;
    r.id = 0xabcdull;
    resps.push_back(r);
    r = Response();
    r.seq = 12;
    r.request_type = MsgType::kGetWeight;
    r.weight = Weight{99, 4};
    resps.push_back(r);
    r = Response();
    r.seq = 13;
    r.request_type = MsgType::kSample;
    r.ids = {1, 2, 3, 0xffffffffffull};
    resps.push_back(r);
    r = Response();
    r.seq = 14;
    r.request_type = MsgType::kStats;
    r.json = "{\"x\": 1}";
    resps.push_back(r);
    r = Response();
    r.seq = 15;
    r.status = WireStatus::kShed;
    r.request_type = MsgType::kInsert;
    resps.push_back(r);
  }
  for (const Response& resp : resps) {
    std::string bytes;
    EncodeResponse(resp, &bytes);
    size_t pos = 0;
    std::string_view payload;
    ASSERT_EQ(ExtractFrame(bytes, &pos, &payload), FrameResult::kFrame);
    Response got;
    ASSERT_TRUE(DecodeResponse(payload, &got));
    EXPECT_EQ(got.seq, resp.seq);
    EXPECT_EQ(got.status, resp.status);
    EXPECT_EQ(got.request_type, resp.request_type);
    EXPECT_EQ(got.id, resp.id);
    EXPECT_EQ(got.weight.mult, resp.weight.mult);
    EXPECT_EQ(got.ids, resp.ids);
    EXPECT_EQ(got.json, resp.json);
  }
}

// --- Framing negative paths ----------------------------------------------

TEST(ServerProtocolTest, TruncatedFramesNeedMore) {
  const std::string bytes = EncodeOne(MakeSampleRequest());
  // Every strict prefix is incomplete, never an error: the framing layer
  // must wait for more bytes, not misparse a partial frame.
  for (size_t len = 0; len < bytes.size(); ++len) {
    size_t pos = 0;
    std::string_view payload;
    EXPECT_EQ(ExtractFrame(std::string_view(bytes.data(), len), &pos,
                           &payload),
              FrameResult::kNeedMore)
        << "prefix length " << len;
    EXPECT_EQ(pos, 0u);
  }
}

TEST(ServerProtocolTest, EveryBitFlipIsDetected) {
  const std::string golden = EncodeOne(MakeSampleRequest());
  // Flip every bit of the frame, one at a time. A flip in the payload or
  // CRC must yield kBadFrame; a flip in the length prefix yields kBadFrame,
  // kNeedMore (declared length grew), or — if it shrank the declared
  // length — a CRC mismatch, also kBadFrame. None may round-trip as the
  // original request, crash, or read out of bounds.
  for (size_t bit = 0; bit < golden.size() * 8; ++bit) {
    std::string mutated = golden;
    mutated[bit / 8] = static_cast<char>(mutated[bit / 8] ^ (1 << (bit % 8)));
    size_t pos = 0;
    std::string_view payload;
    const FrameResult r = ExtractFrame(mutated, &pos, &payload);
    if (r == FrameResult::kFrame) {
      // Only reachable for a length-prefix flip that still framed some
      // CRC-valid sub-buffer — astronomically unlikely; must at minimum
      // not equal the original payload.
      Request got;
      if (DecodeRequest(payload, &got)) {
        EXPECT_FALSE(got.seq == 77 && got.max_ids == 123)
            << "bit " << bit << " silently preserved the request";
      }
    } else {
      EXPECT_TRUE(r == FrameResult::kBadFrame || r == FrameResult::kNeedMore);
    }
  }
}

TEST(ServerProtocolTest, OversizedLengthPoisonsStream) {
  std::string bytes;
  AppendU32(&bytes, kMaxPayloadLen + 1);
  AppendU32(&bytes, 0);
  bytes.append(16, 'x');
  size_t pos = 0;
  std::string_view payload;
  EXPECT_EQ(ExtractFrame(bytes, &pos, &payload), FrameResult::kBadFrame);
}

TEST(ServerProtocolTest, RandomBytesNeverCrashTheDecoder) {
  RandomEngine rng(0xf0cc);
  std::string buf;
  for (int round = 0; round < 2000; ++round) {
    buf.clear();
    const size_t len = rng.NextBelow(64);
    for (size_t i = 0; i < len; ++i) {
      buf.push_back(static_cast<char>(rng.NextBits(8)));
    }
    size_t pos = 0;
    std::string_view payload;
    const FrameResult r = ExtractFrame(buf, &pos, &payload);
    if (r == FrameResult::kFrame) {
      Request req;
      Response resp;
      (void)DecodeRequest(payload, &req);
      (void)DecodeResponse(payload, &resp);
    }
  }
}

// --- Body negative paths --------------------------------------------------

TEST(ServerProtocolTest, MalformedBodiesRejectedNotCrashed) {
  // Unknown type byte.
  {
    std::string payload;
    payload.push_back(static_cast<char>(0x42));
    AppendU64(&payload, 1);
    Request req;
    EXPECT_FALSE(DecodeRequest(payload, &req));
    EXPECT_EQ(req.seq, 1u);  // best-effort echo for the error response
  }
  // Truncated body: kInsert declares 8 body bytes, give it 3.
  {
    std::string payload;
    payload.push_back(static_cast<char>(MsgType::kInsert));
    AppendU64(&payload, 2);
    payload.append(3, '\0');
    Request req;
    EXPECT_FALSE(DecodeRequest(payload, &req));
    EXPECT_EQ(req.type, MsgType::kInsert);
    EXPECT_EQ(req.seq, 2u);
  }
  // Trailing garbage after a well-formed body.
  {
    std::string payload = EncodeOne(MakeSampleRequest());
    size_t pos = 0;
    std::string_view inner;
    ASSERT_EQ(ExtractFrame(payload, &pos, &inner), FrameResult::kFrame);
    std::string body(inner);
    body.append(4, 'z');
    Request req;
    EXPECT_FALSE(DecodeRequest(body, &req));
  }
  // Empty payload.
  {
    Request req;
    EXPECT_FALSE(DecodeRequest(std::string_view(), &req));
  }
  // A request payload is not a response.
  {
    std::string payload = EncodeOne(MakeSampleRequest());
    size_t pos = 0;
    std::string_view inner;
    ASSERT_EQ(ExtractFrame(payload, &pos, &inner), FrameResult::kFrame);
    Response resp;
    EXPECT_FALSE(DecodeResponse(inner, &resp));
  }
  // Response with a declared sample count exceeding the actual bytes.
  {
    std::string payload;
    payload.push_back(static_cast<char>(MsgType::kResponse));
    AppendU64(&payload, 9);
    payload.push_back(static_cast<char>(WireStatus::kOk));
    payload.push_back(static_cast<char>(MsgType::kSample));
    AppendU32(&payload, 1000);  // declares 1000 ids, provides none
    Response resp;
    EXPECT_FALSE(DecodeResponse(payload, &resp));
  }
}

// --- Live-server negative paths ------------------------------------------

class ServerProtocolLiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions opts;
    opts.port = 0;
    opts.io_threads = 2;
    opts.backend = "halt";
    opts.batch_window_us = 0;  // minimize latency for the test
    auto started = Server::Start(opts);
    ASSERT_TRUE(started.ok()) << started.status().message();
    server_ = std::move(*started);
  }

  std::unique_ptr<Client> Dial() {
    auto c = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(c.ok());
    return std::move(*c);
  }

  std::unique_ptr<Server> server_;
};

TEST_F(ServerProtocolLiveTest, BadCrcDisconnects) {
  auto client = Dial();
  ASSERT_TRUE(client->Ping().ok());
  std::string frame = EncodeOne(MakeSampleRequest());
  frame[frame.size() - 1] = static_cast<char>(frame.back() ^ 0x01);
  ASSERT_TRUE(client->SendRaw(frame).ok());
  // The stream is poisoned: the server must close without answering.
  EXPECT_EQ(client->ReadUntilClose(), "");
}

TEST_F(ServerProtocolLiveTest, OversizedLengthDisconnects) {
  auto client = Dial();
  std::string junk;
  AppendU32(&junk, kMaxPayloadLen + 7);
  AppendU32(&junk, 0x12345678);
  junk.append(64, 'q');
  ASSERT_TRUE(client->SendRaw(junk).ok());
  EXPECT_EQ(client->ReadUntilClose(), "");
}

TEST_F(ServerProtocolLiveTest, MalformedBodyGetsErrorAndConnectionLives) {
  auto client = Dial();
  // CRC-valid frame whose body has an unknown type: kProtocolError reply,
  // and the connection must still serve the next request.
  std::string payload;
  payload.push_back(static_cast<char>(0x66));
  AppendU64(&payload, 42);
  std::string frame;
  AppendU32(&frame, static_cast<uint32_t>(payload.size()));
  AppendU32(&frame, persist::MaskCrc(persist::Crc32c(payload)));
  frame.append(payload);
  ASSERT_TRUE(client->SendRaw(frame).ok());
  auto resp = client->ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status().message();
  EXPECT_EQ(resp->status, WireStatus::kProtocolError);
  EXPECT_EQ(resp->seq, 42u);
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(ServerProtocolLiveTest, PipelinedOutOfOrderSeqsAllAnswered) {
  auto client = Dial();
  // Queue a burst of mixed requests before reading anything; every seq
  // must come back exactly once (mutations in order, queries whenever).
  std::vector<uint64_t> seqs;
  for (int i = 0; i < 32; ++i) {
    Request req;
    if (i % 3 == 0) {
      req.type = MsgType::kInsert;
      req.weight = Weight{static_cast<uint64_t>(i + 1), 0};
    } else if (i % 3 == 1) {
      req.type = MsgType::kSample;
      req.alpha = Rational64{1, 1};
      req.beta = Rational64{0, 1};
    } else {
      req.type = MsgType::kPing;
    }
    seqs.push_back(client->SendRequest(req));
  }
  std::vector<bool> seen(seqs.size(), false);
  for (size_t i = 0; i < seqs.size(); ++i) {
    auto resp = client->ReadResponse();
    ASSERT_TRUE(resp.ok()) << resp.status().message();
    bool matched = false;
    for (size_t j = 0; j < seqs.size(); ++j) {
      if (seqs[j] == resp->seq) {
        EXPECT_FALSE(seen[j]) << "duplicate response for seq " << resp->seq;
        seen[j] = true;
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "unexpected seq " << resp->seq;
  }
}

// --- Replication message negative paths (docs/REPLICATION.md) -------------

Request MakeWalSegmentRequest() {
  Request req;
  req.type = MsgType::kWalSegment;
  req.seq = 88;
  req.subscriber = 7;
  req.epoch = 3;
  req.wal_seq = 41;  // from_seq
  req.max_bytes = 4096;
  return req;
}

TEST(ServerProtocolTest, ReplicationRequestsRoundTrip) {
  std::vector<Request> reqs;
  {
    Request r;
    r.type = MsgType::kSubscribe;
    r.seq = 20;
    r.subscriber = 0;
    r.epoch = 5;
    r.wal_seq = 17;  // applied_seq
    reqs.push_back(r);
    reqs.push_back(MakeWalSegmentRequest());
    r = Request();
    r.type = MsgType::kSnapshotChunk;
    r.seq = 22;
    r.subscriber = 9;
    r.epoch = 6;
    r.offset = 123456;
    r.max_bytes = 65536;
    reqs.push_back(r);
  }
  for (const Request& req : reqs) {
    const std::string bytes = EncodeOne(req);
    size_t pos = 0;
    std::string_view payload;
    ASSERT_EQ(ExtractFrame(bytes, &pos, &payload), FrameResult::kFrame);
    Request got;
    ASSERT_TRUE(DecodeRequest(payload, &got))
        << "type " << static_cast<int>(req.type);
    EXPECT_EQ(got.type, req.type);
    EXPECT_EQ(got.seq, req.seq);
    EXPECT_EQ(got.subscriber, req.subscriber);
    EXPECT_EQ(got.epoch, req.epoch);
    EXPECT_EQ(got.wal_seq, req.wal_seq);
    EXPECT_EQ(got.offset, req.offset);
    EXPECT_EQ(got.max_bytes, req.max_bytes);
  }
}

TEST(ServerProtocolTest, ReplicationResponsesRoundTrip) {
  std::vector<Response> resps;
  {
    Response r;
    r.seq = 30;
    r.request_type = MsgType::kSubscribe;
    r.subscriber = 4;
    r.epoch = 2;
    r.total_bytes = 9999;
    r.wal_seq = 57;
    r.must_bootstrap = true;
    resps.push_back(r);
    r = Response();
    r.seq = 31;
    r.request_type = MsgType::kWalSegment;
    r.epoch = 2;
    r.wal_seq = 58;
    r.blob = std::string("\x01\x02raw-record-bytes\x00\xff", 20);
    resps.push_back(r);
    r = Response();
    r.seq = 32;
    r.request_type = MsgType::kSnapshotChunk;
    r.epoch = 2;
    r.total_bytes = 100;
    r.blob = "snapshot-chunk";
    resps.push_back(r);
    r = Response();
    r.seq = 33;
    r.status = WireStatus::kNotPrimary;
    r.request_type = MsgType::kInsert;
    r.primary_addr = "10.1.2.3:4567";
    resps.push_back(r);
  }
  for (const Response& resp : resps) {
    std::string bytes;
    EncodeResponse(resp, &bytes);
    size_t pos = 0;
    std::string_view payload;
    ASSERT_EQ(ExtractFrame(bytes, &pos, &payload), FrameResult::kFrame);
    Response got;
    ASSERT_TRUE(DecodeResponse(payload, &got))
        << "request_type " << static_cast<int>(resp.request_type);
    EXPECT_EQ(got.seq, resp.seq);
    EXPECT_EQ(got.status, resp.status);
    EXPECT_EQ(got.subscriber, resp.subscriber);
    EXPECT_EQ(got.epoch, resp.epoch);
    EXPECT_EQ(got.wal_seq, resp.wal_seq);
    EXPECT_EQ(got.total_bytes, resp.total_bytes);
    EXPECT_EQ(got.must_bootstrap, resp.must_bootstrap);
    EXPECT_EQ(got.blob, resp.blob);
    EXPECT_EQ(got.primary_addr, resp.primary_addr);
  }
}

TEST(ServerProtocolTest, TruncatedReplicationBodiesRejected) {
  // Every strict prefix of each replication request body must be rejected
  // by the decoder (with the type/seq echo preserved when it fits), never
  // misread as a shorter valid request.
  std::vector<Request> reqs;
  {
    Request r;
    r.type = MsgType::kSubscribe;
    r.seq = 50;
    r.epoch = 1;
    reqs.push_back(r);
    reqs.push_back(MakeWalSegmentRequest());
    r = Request();
    r.type = MsgType::kSnapshotChunk;
    r.seq = 52;
    r.epoch = 1;
    r.offset = 10;
    reqs.push_back(r);
  }
  for (const Request& req : reqs) {
    const std::string frame = EncodeOne(req);
    size_t pos = 0;
    std::string_view payload;
    ASSERT_EQ(ExtractFrame(frame, &pos, &payload), FrameResult::kFrame);
    for (size_t len = 0; len < payload.size(); ++len) {
      Request got;
      EXPECT_FALSE(DecodeRequest(payload.substr(0, len), &got))
          << "type " << static_cast<int>(req.type) << " prefix " << len;
    }
  }
  // A kWalSegment *response* whose declared blob length exceeds the
  // actual bytes (a truncated shipped segment) must be rejected too.
  {
    Response resp;
    resp.seq = 53;
    resp.request_type = MsgType::kWalSegment;
    resp.wal_seq = 9;
    resp.blob = "0123456789abcdef";
    std::string frame;
    EncodeResponse(resp, &frame);
    size_t pos = 0;
    std::string_view payload;
    ASSERT_EQ(ExtractFrame(frame, &pos, &payload), FrameResult::kFrame);
    for (size_t cut = 1; cut <= resp.blob.size(); ++cut) {
      Response got;
      EXPECT_FALSE(
          DecodeResponse(payload.substr(0, payload.size() - cut), &got))
          << "blob short by " << cut;
    }
  }
}

TEST(ServerProtocolTest, EveryBitFlipInWalSegmentFrameIsDetected) {
  // A shipped WAL segment rides a kWalSegment response frame; the framing
  // CRC must catch any single-bit corruption of it (the replica's own
  // per-record CRC is the second line of defense, exercised by
  // replica_chaos_test).
  Response resp;
  resp.seq = 60;
  resp.request_type = MsgType::kWalSegment;
  resp.epoch = 4;
  resp.wal_seq = 12;
  resp.blob = std::string(64, '\x5a');
  std::string golden;
  EncodeResponse(resp, &golden);
  for (size_t bit = 0; bit < golden.size() * 8; ++bit) {
    std::string mutated = golden;
    mutated[bit / 8] = static_cast<char>(mutated[bit / 8] ^ (1 << (bit % 8)));
    size_t pos = 0;
    std::string_view payload;
    const FrameResult r = ExtractFrame(mutated, &pos, &payload);
    if (r == FrameResult::kFrame) {
      Response got;
      if (DecodeResponse(payload, &got)) {
        EXPECT_FALSE(got.seq == resp.seq && got.blob == resp.blob)
            << "bit " << bit << " silently preserved the segment";
      }
    } else {
      EXPECT_TRUE(r == FrameResult::kBadFrame || r == FrameResult::kNeedMore)
          << "bit " << bit;
    }
  }
}

TEST(ServerProtocolTest, EveryBitFlipInSnapshotChunkFrameIsDetected) {
  Response resp;
  resp.seq = 61;
  resp.request_type = MsgType::kSnapshotChunk;
  resp.epoch = 4;
  resp.total_bytes = 1000;
  resp.blob = std::string(48, '\xa5');
  std::string golden;
  EncodeResponse(resp, &golden);
  for (size_t bit = 0; bit < golden.size() * 8; ++bit) {
    std::string mutated = golden;
    mutated[bit / 8] = static_cast<char>(mutated[bit / 8] ^ (1 << (bit % 8)));
    size_t pos = 0;
    std::string_view payload;
    const FrameResult r = ExtractFrame(mutated, &pos, &payload);
    if (r == FrameResult::kFrame) {
      Response got;
      if (DecodeResponse(payload, &got)) {
        EXPECT_FALSE(got.seq == resp.seq && got.blob == resp.blob)
            << "bit " << bit << " silently preserved the chunk";
      }
    } else {
      EXPECT_TRUE(r == FrameResult::kBadFrame || r == FrameResult::kNeedMore)
          << "bit " << bit;
    }
  }
}

TEST_F(ServerProtocolLiveTest, ReplicationRequestsUnsupportedWithoutWal) {
  // This fixture's server is not durable, so it has no WAL to ship: every
  // replication request must bounce with kUnsupported on a connection
  // that lives on.
  auto client = Dial();
  for (MsgType type :
       {MsgType::kSubscribe, MsgType::kWalSegment, MsgType::kSnapshotChunk}) {
    Request req;
    req.type = type;
    req.epoch = 1;
    req.wal_seq = 1;
    client->SendRequest(req);
    ASSERT_TRUE(client->Flush().ok());
    auto resp = client->ReadResponse();
    ASSERT_TRUE(resp.ok()) << resp.status().message();
    EXPECT_EQ(resp->status, WireStatus::kUnsupported)
        << "type " << static_cast<int>(type);
  }
  EXPECT_TRUE(client->Ping().ok());
}

TEST(ServerProtocolDurableTest, NonexistentEpochAsksForBootstrap) {
  // Against a real durable primary: a subscriber on an epoch the primary
  // no longer has (or never had) is told to re-bootstrap, not fed bytes
  // and not disconnected; a zero from_seq is an argument error.
  persist::MemEnv env;
  ServerOptions opts;
  opts.port = 0;
  opts.io_threads = 2;
  opts.backend = "halt";
  opts.batch_window_us = 0;
  opts.durable_dir = "/primary";
  opts.env = &env;
  auto started = Server::Start(opts);
  ASSERT_TRUE(started.ok()) << started.status().message();
  auto client = Client::Connect("127.0.0.1", (*started)->port());
  ASSERT_TRUE(client.ok());

  auto sub = (*client)->Subscribe(0, 0, 0);
  ASSERT_TRUE(sub.ok()) << sub.status().message();
  ASSERT_EQ(sub->status, WireStatus::kOk);
  EXPECT_TRUE(sub->must_bootstrap);
  const uint64_t live_epoch = sub->epoch;

  auto seg = (*client)->WalSegment(sub->subscriber, live_epoch + 999, 1, 0);
  ASSERT_TRUE(seg.ok());
  ASSERT_EQ(seg->status, WireStatus::kOk);
  EXPECT_TRUE(seg->must_bootstrap);
  EXPECT_TRUE(seg->blob.empty());

  auto chunk =
      (*client)->SnapshotChunk(sub->subscriber, live_epoch + 999, 0, 0);
  ASSERT_TRUE(chunk.ok());
  ASSERT_EQ(chunk->status, WireStatus::kOk);
  EXPECT_TRUE(chunk->must_bootstrap);
  EXPECT_TRUE(chunk->blob.empty());

  // A zero from_seq is an argument error (the client maps the wire
  // status back to a Status).
  auto bad = (*client)->WalSegment(sub->subscriber, live_epoch, 0, 0);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  // Subscribing from a *future* epoch (a replica of some other primary)
  // also demands a fresh bootstrap rather than trusting the claim.
  auto future = (*client)->Subscribe(0, live_epoch + 5, 123);
  ASSERT_TRUE(future.ok());
  ASSERT_EQ(future->status, WireStatus::kOk);
  EXPECT_TRUE(future->must_bootstrap);

  EXPECT_TRUE((*client)->Ping().ok());
}

TEST_F(ServerProtocolLiveTest, GarbageFloodNeverKillsServer) {
  RandomEngine rng(0xbadbeef);
  for (int conn = 0; conn < 8; ++conn) {
    auto client = Dial();
    std::string junk;
    const size_t len = 32 + rng.NextBelow(512);
    for (size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(rng.NextBits(8)));
    }
    (void)client->SendRaw(junk);
    (void)client->ReadUntilClose();
  }
  // The server survived eight poisoned streams and still serves.
  auto client = Dial();
  EXPECT_TRUE(client->Ping().ok());
}

}  // namespace
}  // namespace server
}  // namespace dpss
