// Randomized churn stress: interleaved Insert/Erase/SetWeight sequences in
// both rebuild modes (amortized bursts and de-amortized migrations), with
// CheckInvariants() after every single step and a reference weight map
// mirroring the sampler. Ends with a chi-square acceptance gate asserting
// that sampled frequencies track the *post-update* weights — i.e. that
// in-place weight updates are distribution-equivalent to erase+reinsert.

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "bigint/rational.h"
#include "core/dpss_sampler.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace dpss {
namespace {

using testing_util::ExpectFrequencyGate;

class ChurnStressTest : public ::testing::TestWithParam<bool> {};

TEST_P(ChurnStressTest, InterleavedUpdatesKeepEveryInvariant) {
  const bool deamortized = GetParam();
  DpssSampler::Options opt;
  opt.seed = deamortized ? 9001 : 9002;
  opt.deamortized_rebuild = deamortized;
  opt.migrate_per_update = 5;  // slowest legal migration: stays in flight
  DpssSampler s(opt);

  RandomEngine rng(deamortized ? 501 : 502);
  std::vector<DpssSampler::ItemId> live;
  std::unordered_map<DpssSampler::ItemId, Weight> reference;
  std::vector<DpssSampler::ItemId> stale;  // every id ever erased
  uint64_t setweight_during_migration = 0;
  uint64_t erase_during_migration = 0;

  auto draw_weight = [&rng]() -> uint64_t {
    // Zero occasionally (parked items), otherwise spread across ~36 buckets
    // so SetWeight exercises both the same-bucket patch and rebucketing.
    if (rng.NextBelow(12) == 0) return 0;
    const int e = static_cast<int>(rng.NextBelow(36));
    return (uint64_t{1} << e) + rng.NextBelow(uint64_t{1} << e);
  };

  const int kSteps = 1500;
  for (int step = 0; step < kSteps; ++step) {
    const uint64_t op = rng.NextBelow(100);
    if (op < 35 || live.empty()) {
      const uint64_t w = draw_weight();
      const auto id = s.Insert(w);
      live.push_back(id);
      ASSERT_TRUE(reference.emplace(id, Weight::FromU64(w)).second)
          << "id handed out twice";
    } else if (op < 55) {
      const size_t idx = rng.NextBelow(live.size());
      if (s.migration_in_progress()) ++erase_during_migration;
      s.Erase(live[idx]);
      reference.erase(live[idx]);
      stale.push_back(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    } else {
      const size_t idx = rng.NextBelow(live.size());
      const auto id = live[idx];
      uint64_t w;
      const uint64_t kind = rng.NextBelow(4);
      if (kind == 0) {
        // Same-bucket patch (or a revival to bucket 0 for parked items).
        const Weight cur = s.GetWeight(id);
        if (cur.IsZero()) {
          w = 1;
        } else {
          const uint64_t floor = uint64_t{1} << cur.BucketIndex();
          w = floor + rng.NextBelow(floor);
        }
      } else if (kind == 1) {
        w = s.GetWeight(id).mult;  // no-op update
      } else {
        w = draw_weight();  // usually rebuckets, sometimes parks
      }
      if (s.migration_in_progress()) ++setweight_during_migration;
      s.SetWeight(id, w);
      reference[id] = Weight::FromU64(w);
    }

    s.CheckInvariants();
    ASSERT_EQ(s.size(), reference.size());
    // Spot-check the reference mapping and stale-id safety each step.
    if (!live.empty()) {
      const auto id = live[rng.NextBelow(live.size())];
      ASSERT_TRUE(s.Contains(id));
      ASSERT_TRUE(s.GetWeight(id) == reference[id]);
    }
    if (!stale.empty()) {
      ASSERT_FALSE(s.Contains(stale[rng.NextBelow(stale.size())]));
    }
  }

  // Every erased id must still be dead, even after heavy slot reuse.
  for (const auto id : stale) ASSERT_FALSE(s.Contains(id));
  if (deamortized) {
    EXPECT_GT(setweight_during_migration, 0u)
        << "test design: no SetWeight landed during a migration";
    EXPECT_GT(erase_during_migration, 0u);
  }

  // --- Distribution gate over the post-churn, post-update weights --------
  // Reweight the survivors into a narrow band so every expected hit count
  // clears the chi-square small-cell limit, then chi-square sampled
  // frequencies against exact p_x of the *current* weights.
  while (live.size() > 64) {
    s.Erase(live.back());
    reference.erase(live.back());
    live.pop_back();
  }
  for (const auto id : live) {
    const uint64_t w = (uint64_t{1} << 12) + rng.NextBelow(uint64_t{1} << 14);
    s.SetWeight(id, w);
    reference[id] = Weight::FromU64(w);
  }
  s.CheckInvariants();

  const Rational64 alpha{1, 8};
  const Rational64 beta{0, 1};
  BigUInt wnum, wden;
  s.ComputeW(alpha, beta, &wnum, &wden);
  const double w_total = BigRational(wnum, wden).ToDouble();

  const uint64_t kTrials = 30000;
  std::unordered_map<DpssSampler::ItemId, uint64_t> hit_map;
  for (const auto id : live) hit_map[id] = 0;
  std::vector<DpssSampler::ItemId> buf;
  RandomEngine qrng(deamortized ? 601 : 602);
  for (uint64_t t = 0; t < kTrials; ++t) {
    s.SampleInto(alpha, beta, qrng, &buf);
    for (const auto id : buf) {
      auto it = hit_map.find(id);
      ASSERT_NE(it, hit_map.end()) << "sampled an unknown id";
      ++it->second;
    }
  }

  std::vector<uint64_t> hits;
  std::vector<double> probs;
  for (const auto id : live) {
    const double p = reference[id].ToDouble() / w_total;
    ASSERT_LT(p, 1.0);  // the narrow band keeps every item uncapped
    ASSERT_GT(p * static_cast<double>(kTrials),
              testing_util::kMinExpectedCell)
        << "test design: cell too small";
    hits.push_back(hit_map[id]);
    probs.push_back(p);
  }
  ExpectFrequencyGate(hits, kTrials, probs, 4.75,
                      deamortized ? "churn/deamortized" : "churn/amortized");
}

INSTANTIATE_TEST_SUITE_P(RebuildModes, ChurnStressTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Deamortized" : "Amortized";
                         });

}  // namespace
}  // namespace dpss
