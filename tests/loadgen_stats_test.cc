// Pins the loadgen reply-accounting rule (tools/loadgen_stats.h): kShed
// replies are admission rejections, not service measurements — they count
// toward shed_rate but must never enter the latency histogram. The
// original bug recorded every reply's latency before branching on status,
// so sub-microsecond rejections deflated the quantiles exactly when the
// server was most overloaded.

#include "tools/loadgen_stats.h"

#include <cstdint>

#include "gtest/gtest.h"
#include "server/metrics.h"
#include "server/protocol.h"

namespace dpss {
namespace loadgen {
namespace {

using server::HistogramSnapshot;
using server::LatencyHistogram;
using server::WireStatus;

TEST(LoadgenStatsTest, ShedRepliesNeverEnterTheLatencyHistogram) {
  ReplyCounters counters;
  LatencyHistogram latency;

  // A plausible overload mix: slow successes plus a flood of instant
  // sheds. Under the buggy accounting the 1us sheds dominated every
  // quantile.
  for (int i = 0; i < 100; ++i) {
    AccountReply(WireStatus::kOk, 1'000'000, &counters, &latency);  // 1ms
  }
  for (int i = 0; i < 900; ++i) {
    AccountReply(WireStatus::kShed, 1'000, &counters, &latency);  // 1us
  }

  EXPECT_EQ(counters.ops, 100u);
  EXPECT_EQ(counters.shed, 900u);
  EXPECT_EQ(counters.errors, 0u);
  EXPECT_EQ(counters.total(), 1000u);
  EXPECT_DOUBLE_EQ(ShedRate(counters), 0.9);

  HistogramSnapshot snap;
  latency.AccumulateInto(snap.buckets());
  // Only the 100 kOk replies were measured...
  EXPECT_EQ(snap.count(), 100u);
  // ...so the median reflects the 1ms service latency, not the shed flood
  // (the buggy accounting put p50 at ~1us here).
  EXPECT_GE(snap.ValueAtQuantile(0.5), 1'000'000u);
}

TEST(LoadgenStatsTest, ErrorRepliesAreTimedAndCounted) {
  ReplyCounters counters;
  LatencyHistogram latency;

  // Error replies traversed the serving path and did real work, so they
  // stay in the distribution, unlike sheds.
  AccountReply(WireStatus::kInvalidId, 5'000, &counters, &latency);
  AccountReply(WireStatus::kIoError, 7'000, &counters, &latency);

  EXPECT_EQ(counters.ops, 0u);
  EXPECT_EQ(counters.shed, 0u);
  EXPECT_EQ(counters.errors, 2u);

  HistogramSnapshot snap;
  latency.AccumulateInto(snap.buckets());
  EXPECT_EQ(snap.count(), 2u);
}

TEST(LoadgenStatsTest, ShedRateOfNothingIsZero) {
  EXPECT_DOUBLE_EQ(ShedRate(ReplyCounters{}), 0.0);
}

}  // namespace
}  // namespace loadgen
}  // namespace dpss
