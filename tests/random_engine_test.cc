// Tests for the RandomEngine word source: determinism, bit-range contracts,
// uniformity of NextBelow/NextBits, and independence of bit positions.

#include "util/random.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace dpss {
namespace {

TEST(RandomEngineTest, DeterministicFromSeed) {
  RandomEngine a(123), b(123), c(124);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t wa = a.NextWord();
    EXPECT_EQ(wa, b.NextWord());
    differs |= wa != c.NextWord();
  }
  EXPECT_TRUE(differs);
}

TEST(RandomEngineTest, ReseedRestartsSequence) {
  RandomEngine a(7);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.NextWord());
  a.Seed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.NextWord(), first[i]);
}

TEST(RandomEngineTest, NextBitsRange) {
  RandomEngine rng(1);
  EXPECT_EQ(rng.NextBits(0), 0u);
  for (int bits = 1; bits <= 64; ++bits) {
    for (int i = 0; i < 100; ++i) {
      const uint64_t v = rng.NextBits(bits);
      if (bits < 64) {
        EXPECT_LT(v, uint64_t{1} << bits) << bits;
      }
    }
  }
}

TEST(RandomEngineTest, NextBelowRespectsBound) {
  RandomEngine rng(2);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 40) + 7}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RandomEngineTest, NextBelowIsUniform) {
  RandomEngine rng(3);
  // A bound that is NOT a power of two stresses the rejection path.
  const uint64_t bound = 12;
  const uint64_t trials = 240000;
  std::vector<uint64_t> counts(bound, 0);
  for (uint64_t i = 0; i < trials; ++i) counts[rng.NextBelow(bound)]++;
  std::vector<double> expected(bound, 1.0 / static_cast<double>(bound));
  int dof = 0;
  const double chi = testing_util::ChiSquare(counts, expected, trials, &dof);
  EXPECT_LE(chi, testing_util::ChiSquareGate(dof));
}

TEST(RandomEngineTest, WordBitsAreBalanced) {
  RandomEngine rng(4);
  const int kTrials = 50000;
  std::vector<uint64_t> ones(64, 0);
  for (int i = 0; i < kTrials; ++i) {
    const uint64_t w = rng.NextWord();
    for (int b = 0; b < 64; ++b) ones[b] += (w >> b) & 1;
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_LE(std::abs(testing_util::BernoulliZScore(ones[b], kTrials, 0.5)),
              4.75)
        << "bit " << b;
  }
}

TEST(RandomEngineTest, NextDoubleInUnitInterval) {
  RandomEngine rng(5);
  double sum = 0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / kTrials, 0.5, 0.01);
}

TEST(RandomEngineTest, CopyPreservesState) {
  RandomEngine a(9);
  a.NextWord();
  RandomEngine b = a;
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.NextWord(), b.NextWord());
}

}  // namespace
}  // namespace dpss
