// Unit tests for the WAL layer (persist/wal.h) and the Env plumbing it
// rides on: record round-trips, sequence-hole detection, torn-tail
// truncation at every byte length, group-commit bookkeeping, and MemEnv
// semantics. The end-to-end crash story lives in recovery_test.cc.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/env.h"
#include "persist/wal.h"

namespace dpss {
namespace persist {
namespace {

std::vector<WalOp> SingleOp(Op::Kind kind, ItemId id, uint64_t w) {
  return {{kind, id, Weight::FromU64(w)}};
}

TEST(WalTest, RoundTripsRecordsAndEpoch) {
  MemEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  auto writer = WalWriter::Create(&env, "d/wal-7", 7);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(SingleOp(Op::Kind::kInsert, 42, 10)).ok());
  ASSERT_TRUE((*writer)->Append(SingleOp(Op::Kind::kSetWeight, 42, 3)).ok());
  // A batch record: several ops, one atomic replay unit.
  std::vector<WalOp> batch = {
      {Op::Kind::kInsert, 43, Weight(5, 40)},
      {Op::Kind::kErase, 42, Weight{}},
  };
  ASSERT_TRUE((*writer)->Append(batch).ok());
  ASSERT_TRUE((*writer)->Sync().ok());

  std::string bytes;
  ASSERT_TRUE(env.ReadFileToString("d/wal-7", &bytes).ok());
  auto contents = ReadWal(bytes);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->epoch, 7u);
  EXPECT_EQ(contents->dropped_bytes, 0u);
  EXPECT_EQ(contents->valid_bytes, bytes.size());
  ASSERT_EQ(contents->records.size(), 3u);
  EXPECT_EQ(contents->records[0].seq, 1u);
  EXPECT_EQ(contents->records[2].seq, 3u);
  ASSERT_EQ(contents->records[2].ops.size(), 2u);
  EXPECT_EQ(contents->records[2].ops[0].kind, Op::Kind::kInsert);
  EXPECT_EQ(contents->records[2].ops[0].id, 43u);
  EXPECT_TRUE(contents->records[2].ops[0].weight == Weight(5, 40));
  EXPECT_EQ(contents->records[2].ops[1].kind, Op::Kind::kErase);
}

TEST(WalTest, EveryTornTailRecoversTheRecordPrefix) {
  MemEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  auto writer = WalWriter::Create(&env, "d/wal-1", 1);
  ASSERT_TRUE(writer.ok());
  std::vector<uint64_t> record_ends;  // byte offset after each record
  std::string full;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        (*writer)->Append(SingleOp(Op::Kind::kInsert, 100 + i, 1 + i)).ok());
    ASSERT_TRUE(env.ReadFileToString("d/wal-1", &full).ok());
    record_ends.push_back(full.size());
  }

  // Truncating at *every* byte length must yield exactly the records whose
  // encoding completed before the cut — the crash-normal torn tail.
  for (size_t len = 0; len <= full.size(); ++len) {
    const std::string cut = full.substr(0, len);
    auto contents = ReadWal(cut);
    if (len < 20) {
      // Inside the header: not recognizable as a WAL at all.
      EXPECT_EQ(contents.status().code(), StatusCode::kBadSnapshot)
          << "len " << len;
      continue;
    }
    ASSERT_TRUE(contents.ok()) << "len " << len;
    size_t expect = 0;
    while (expect < record_ends.size() && record_ends[expect] <= len) {
      ++expect;
    }
    EXPECT_EQ(contents->records.size(), expect) << "len " << len;
    EXPECT_EQ(contents->dropped_bytes,
              len - (expect == 0 ? 20 : record_ends[expect - 1]))
        << "len " << len;
  }
}

TEST(WalTest, CorruptionEndsTheValidPrefix) {
  MemEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  auto writer = WalWriter::Create(&env, "d/wal-1", 1);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*writer)->Append(SingleOp(Op::Kind::kInsert, i, 7)).ok());
  }
  std::string bytes;
  ASSERT_TRUE(env.ReadFileToString("d/wal-1", &bytes).ok());

  // Flip one bit inside the third record's body: records 1-2 survive, the
  // rest of the log is dropped (standard first-bad-record policy).
  auto clean = ReadWal(bytes);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean->records.size(), 5u);
  std::string corrupt = bytes;
  // Record stride 41 = len(4) + body(33 = seq 8 + count 4 + one 21-byte
  // op) + crc(4); header is 20. Flip a bit 10 bytes into record 3's body.
  corrupt[20 + 2 * 41 + 4 + 10] ^= 0x40;
  auto contents = ReadWal(corrupt);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->records.size(), 2u);
  EXPECT_GT(contents->dropped_bytes, 0u);

  // A wrong magic or version is not a WAL at all.
  std::string bad_magic = bytes;
  bad_magic[0] ^= 1;
  EXPECT_EQ(ReadWal(bad_magic).status().code(), StatusCode::kBadSnapshot);
}

TEST(WalTest, GroupCommitBookkeeping) {
  MemEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  auto writer = WalWriter::Create(&env, "d/wal-1", 1);
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ((*writer)->unsynced_records(), 0u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*writer)->Append(SingleOp(Op::Kind::kInsert, i, 1)).ok());
  }
  EXPECT_EQ((*writer)->unsynced_records(), 3u);
  EXPECT_EQ((*writer)->next_seq(), 4u);
  ASSERT_TRUE((*writer)->Sync().ok());
  EXPECT_EQ((*writer)->unsynced_records(), 0u);
  EXPECT_GT((*writer)->bytes_written(), 20u);
}

TEST(MemEnvTest, BehavesLikeAFilesystem) {
  MemEnv env;
  ASSERT_TRUE(env.CreateDir("dir").ok());
  EXPECT_FALSE(env.FileExists("dir/a"));
  {
    auto f = env.NewWritableFile("dir/a", /*truncate=*/true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("hello ").ok());
    ASSERT_TRUE((*f)->Append("world").ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  std::string contents;
  ASSERT_TRUE(env.ReadFileToString("dir/a", &contents).ok());
  EXPECT_EQ(contents, "hello world");

  // Append-reopen keeps existing bytes; truncate-reopen drops them.
  {
    auto f = env.NewWritableFile("dir/a", /*truncate=*/false);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("!").ok());
  }
  ASSERT_TRUE(env.ReadFileToString("dir/a", &contents).ok());
  EXPECT_EQ(contents, "hello world!");

  ASSERT_TRUE(env.RenameFile("dir/a", "dir/b").ok());
  EXPECT_FALSE(env.FileExists("dir/a"));
  auto listing = env.ListDir("dir");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 1u);
  EXPECT_EQ((*listing)[0], "b");

  ASSERT_TRUE(env.TruncateFile("dir/b", 5).ok());
  ASSERT_TRUE(env.ReadFileToString("dir/b", &contents).ok());
  EXPECT_EQ(contents, "hello");

  MemEnv clone;
  clone.CloneFrom(env);
  ASSERT_TRUE(clone.ReadFileToString("dir/b", &contents).ok());
  EXPECT_EQ(contents, "hello");

  ASSERT_TRUE(env.DeleteFile("dir/b").ok());
  EXPECT_EQ(env.DeleteFile("dir/b").code(), StatusCode::kIoError);
  EXPECT_EQ(env.ReadFileToString("no/such", &contents).code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace persist
}  // namespace dpss
