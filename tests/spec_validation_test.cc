// Construction-time SamplerSpec diagnostics: MakeSamplerChecked must
// reject malformed and contradictory specs with kInvalidArgument naming
// the offending field, instead of the old behaviour of silently ignoring
// them (and, for a zero-denominator fixed parameter, blowing up deep
// inside the first probability refresh).

#include <string>

#include <gtest/gtest.h>

#include "core/sampler.h"

namespace dpss {
namespace {

bool MessageMentions(const Status& st, const char* field) {
  return std::string(st.message()).find(field) != std::string::npos;
}

TEST(SpecValidationTest, UnknownBackendName) {
  const auto s = MakeSamplerChecked("definitely-not-registered");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeSampler("definitely-not-registered"), nullptr);
}

TEST(SpecValidationTest, HaltRejectsNonPositiveMigratePerUpdate) {
  SamplerSpec spec;
  spec.migrate_per_update = 0;
  const auto s = MakeSamplerChecked("halt", spec);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(MessageMentions(s.status(), "migrate_per_update"));
  EXPECT_EQ(MakeSampler("halt", spec), nullptr);
}

TEST(SpecValidationTest, HaltRejectsContradictoryDeamortizedMigration) {
  SamplerSpec spec;
  spec.deamortized_rebuild = true;
  // Below 5 items per update the migration cannot be guaranteed to finish
  // before the next size-doubling threshold: contradictory, not merely
  // slow.
  spec.migrate_per_update = 3;
  const auto bad = MakeSamplerChecked("halt", spec);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(MessageMentions(bad.status(), "migrate_per_update"));

  spec.migrate_per_update = 5;
  EXPECT_TRUE(MakeSamplerChecked("halt", spec).ok());
}

TEST(SpecValidationTest, FixedBackendsRejectZeroDenominators) {
  for (const char* backend : {"rebuild", "odss", "bucket_jump"}) {
    SamplerSpec spec;
    spec.fixed_alpha = {1, 0};
    auto s = MakeSamplerChecked(backend, spec);
    ASSERT_FALSE(s.ok()) << backend;
    EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument) << backend;
    EXPECT_TRUE(MessageMentions(s.status(), "fixed_alpha")) << backend;

    spec.fixed_alpha = {1, 1};
    spec.fixed_beta = {7, 0};
    s = MakeSamplerChecked(backend, spec);
    ASSERT_FALSE(s.ok()) << backend;
    EXPECT_TRUE(MessageMentions(s.status(), "fixed_beta")) << backend;
    EXPECT_EQ(MakeSampler(backend, spec), nullptr) << backend;
  }
  // The parameterized backends ignore the fixed parameters entirely, so a
  // shared spec with defaults elsewhere keeps working.
  SamplerSpec spec;
  spec.fixed_alpha = {1, 0};
  EXPECT_TRUE(MakeSamplerChecked("halt", spec).ok());
  EXPECT_TRUE(MakeSamplerChecked("naive", spec).ok());
}

TEST(SpecValidationTest, ShardedRejectsBadShardAndThreadCounts) {
  SamplerSpec spec;
  spec.num_shards = 0;
  auto s = MakeSamplerChecked("sharded:halt", spec);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(MessageMentions(s.status(), "num_shards"));

  spec.num_shards = 4097;
  EXPECT_FALSE(MakeSamplerChecked("sharded:halt", spec).ok());

  spec = SamplerSpec{};
  EXPECT_FALSE(MakeSamplerChecked("sharded0:halt", spec).ok());
  EXPECT_FALSE(MakeSamplerChecked("sharded99999:halt", spec).ok());

  spec.num_threads = -1;
  s = MakeSamplerChecked("sharded:halt", spec);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(MessageMentions(s.status(), "num_threads"));
  spec.num_threads = 257;
  EXPECT_FALSE(MakeSamplerChecked("sharded:halt", spec).ok());
}

TEST(SpecValidationTest, ShardedPropagatesInnerDiagnostics) {
  SamplerSpec spec;
  spec.fixed_alpha = {1, 0};
  auto s = MakeSamplerChecked("sharded4:rebuild", spec);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(MessageMentions(s.status(), "fixed_alpha"));

  spec = SamplerSpec{};
  spec.migrate_per_update = 0;
  s = MakeSamplerChecked("sharded4:halt", spec);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(MessageMentions(s.status(), "migrate_per_update"));

  EXPECT_FALSE(MakeSamplerChecked("sharded4:nope").ok());
  EXPECT_EQ(MakeSampler("sharded4:nope"), nullptr);
}

TEST(SpecValidationTest, ShardedNameGrammar) {
  // Count embedded in the name.
  auto s = MakeSamplerChecked("sharded16:naive");
  ASSERT_TRUE(s.ok());
  EXPECT_STREQ((*s)->name(), "sharded16:naive");
  EXPECT_NE((*s)->DebugString().find("shards=16"), std::string::npos);

  // Count from the spec.
  SamplerSpec spec;
  spec.num_shards = 2;
  s = MakeSamplerChecked("sharded:naive", spec);
  ASSERT_TRUE(s.ok());
  EXPECT_STREQ((*s)->name(), "sharded:naive");
  EXPECT_NE((*s)->DebugString().find("shards=2"), std::string::npos);

  // Nested composition is allowed (each layer is itself a valid backend).
  EXPECT_TRUE(MakeSamplerChecked("sharded2:sharded2:naive").ok());

  // Not the grammar: no colon, or junk between the prefix and the colon.
  EXPECT_FALSE(MakeSamplerChecked("sharded").ok());
  EXPECT_FALSE(MakeSamplerChecked("sharded8").ok());
  EXPECT_FALSE(MakeSamplerChecked("shardedx:halt").ok());
}

}  // namespace
}  // namespace dpss
