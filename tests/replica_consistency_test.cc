// Cross-process-shaped consistency tests for WAL-shipping replication
// (src/replica/, docs/REPLICATION.md): a primary server and two replica
// servers on MemEnv-backed loopback, driven through the real wire
// protocol. After a churn storm quiesces, all three DumpItems views must
// be identical record-for-record, replica-served samples must pass the
// shared statistical gates against the exact marginals, and mutations
// sent to a replica must bounce with kNotPrimary carrying the primary's
// address.

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "persist/env.h"
#include "server/client.h"
#include "server/server.h"
#include "statistical.h"

namespace dpss {
namespace server {
namespace {

ServerOptions PrimaryOptions(persist::MemEnv* env) {
  ServerOptions opts;
  opts.port = 0;
  opts.io_threads = 2;
  opts.backend = "sharded4:halt";
  opts.batch_window_us = 0;
  opts.durable_dir = "/primary";
  opts.env = env;
  opts.spec.seed = 4242;
  return opts;
}

ServerOptions ReplicaOptions(persist::MemEnv* env, int primary_port) {
  ServerOptions opts;
  opts.port = 0;
  opts.io_threads = 2;
  opts.backend = "sharded4:halt";
  opts.batch_window_us = 0;
  opts.durable_dir = "/mirror";
  opts.env = env;
  opts.spec.seed = 99;
  opts.replica_of = "127.0.0.1:" + std::to_string(primary_port);
  return opts;
}

std::unique_ptr<Server> MustStart(const ServerOptions& opts) {
  auto started = Server::Start(opts);
  EXPECT_TRUE(started.ok()) << started.status().message();
  return started.ok() ? std::move(*started) : nullptr;
}

std::unique_ptr<Client> Dial(const Server& server) {
  auto c = Client::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(c.ok());
  return std::move(*c);
}

bool SameItems(const std::vector<ItemRecord>& a,
               const std::vector<ItemRecord>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].weight.mult != b[i].weight.mult ||
        a[i].weight.exp != b[i].weight.exp) {
      return false;
    }
  }
  return true;
}

std::vector<ItemRecord> SortedDump(const Server& server) {
  std::vector<ItemRecord> items;
  Status st = server.DumpItems(&items);
  EXPECT_TRUE(st.ok()) << st.message();
  std::sort(items.begin(), items.end(),
            [](const ItemRecord& x, const ItemRecord& y) {
              return x.id < y.id;
            });
  return items;
}

// Polls until `replica`'s dump matches `want` (replication is
// asynchronous; the pull cadence is FollowerOptions::poll_ms = 10ms).
bool AwaitCatchUp(const Server& replica, const std::vector<ItemRecord>& want,
                  int deadline_ms) {
  for (int waited = 0; waited < deadline_ms; waited += 20) {
    if (SameItems(SortedDump(replica), want)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return SameItems(SortedDump(replica), want);
}

TEST(ReplicaConsistencyTest, ChurnStormConvergesOnAllReplicas) {
  persist::MemEnv prim_env, rep1_env, rep2_env;
  auto primary = MustStart(PrimaryOptions(&prim_env));
  ASSERT_NE(primary, nullptr);
  auto rep1 = MustStart(ReplicaOptions(&rep1_env, primary->port()));
  auto rep2 = MustStart(ReplicaOptions(&rep2_env, primary->port()));
  ASSERT_NE(rep1, nullptr);
  ASSERT_NE(rep2, nullptr);
  EXPECT_FALSE(primary->is_replica());
  EXPECT_TRUE(rep1->is_replica());
  EXPECT_TRUE(rep2->is_replica());

  // Churn storm against the primary: three rounds of insert/update/erase
  // so the shipped WAL covers every op kind, with a shadow map as ground
  // truth.
  auto client = Dial(*primary);
  std::map<ItemId, Weight> shadow;
  std::vector<ItemId> ids;
  for (int round = 0; round < 3; ++round) {
    std::vector<ItemId> born;
    for (int i = 0; i < 30; ++i) {
      const Weight w{static_cast<uint64_t>((round * 7 + i) % 10 + 1), 0};
      auto id = client->Insert(w);
      ASSERT_TRUE(id.ok()) << id.status().message();
      shadow[*id] = w;
      born.push_back(*id);
    }
    for (int i = 0; i < 10; ++i) {
      const Weight w{static_cast<uint64_t>(i % 8 + 1), 0};
      ASSERT_TRUE(client->SetWeight(born[i], w).ok());
      shadow[born[i]] = w;
    }
    for (int i = 10; i < 30; ++i) {
      ASSERT_TRUE(client->Erase(born[i]).ok());
      shadow.erase(born[i]);
    }
    ids.insert(ids.end(), born.begin(), born.begin() + 10);
  }
  ASSERT_EQ(shadow.size(), 30u);

  // Quiesce: the primary's own dump must equal the shadow, then both
  // replicas must converge to the identical record list.
  const std::vector<ItemRecord> truth = SortedDump(*primary);
  ASSERT_EQ(truth.size(), shadow.size());
  for (const ItemRecord& rec : truth) {
    auto it = shadow.find(rec.id);
    ASSERT_NE(it, shadow.end());
    EXPECT_EQ(rec.weight.mult, it->second.mult);
    EXPECT_EQ(rec.weight.exp, it->second.exp);
  }
  ASSERT_TRUE(AwaitCatchUp(*rep1, truth, 10000))
      << "replica 1 never converged";
  ASSERT_TRUE(AwaitCatchUp(*rep2, truth, 10000))
      << "replica 2 never converged";
  EXPECT_TRUE(rep1->replication_status().ok())
      << rep1->replication_status().message();
  EXPECT_TRUE(rep2->replication_status().ok())
      << rep2->replication_status().message();
  EXPECT_EQ(rep1->replica_epoch(), rep2->replica_epoch());
  EXPECT_EQ(rep1->replica_applied_seq(), rep2->replica_applied_seq());

  // Replica-served sample distribution: with α = 1, β = 0 every item's
  // inclusion probability is exactly w_x / W. Weights are small integers
  // with exp = 0, so the double-precision marginals below are exact.
  uint64_t total = 0;
  for (const ItemRecord& rec : truth) total += rec.weight.mult;
  std::vector<double> probs;
  std::map<ItemId, size_t> index;
  for (const ItemRecord& rec : truth) {
    index[rec.id] = probs.size();
    probs.push_back(static_cast<double>(rec.weight.mult) /
                    static_cast<double>(total));
  }

  constexpr uint64_t kTrials = 20000;
  constexpr int kPipeline = 200;
  auto rclient = Dial(*rep1);
  std::vector<uint64_t> hits(probs.size(), 0);
  Request sample;
  sample.type = MsgType::kSample;
  sample.alpha = Rational64{1, 1};
  sample.beta = Rational64{0, 1};
  sample.max_ids = 4096;
  for (uint64_t done = 0; done < kTrials; done += kPipeline) {
    for (int i = 0; i < kPipeline; ++i) rclient->SendRequest(sample);
    ASSERT_TRUE(rclient->Flush().ok());
    for (int i = 0; i < kPipeline; ++i) {
      auto resp = rclient->ReadResponse();
      ASSERT_TRUE(resp.ok()) << resp.status().message();
      ASSERT_EQ(resp->status, WireStatus::kOk);
      for (ItemId id : resp->ids) {
        auto it = index.find(id);
        ASSERT_NE(it, index.end()) << "replica sampled a dead id " << id;
        ++hits[it->second];
      }
    }
  }
  testing_util::ExpectFrequencyGate(hits, kTrials, probs, 4.75,
                                    "replica-served samples");

  // Mutations to a replica must bounce with the primary's address, and
  // must not have touched the replica's state.
  Request ins;
  ins.type = MsgType::kInsert;
  ins.weight = Weight{5, 0};
  rclient->SendRequest(ins);
  ASSERT_TRUE(rclient->Flush().ok());
  auto bounced = rclient->ReadResponse();
  ASSERT_TRUE(bounced.ok());
  EXPECT_EQ(bounced->status, WireStatus::kNotPrimary);
  EXPECT_EQ(bounced->primary_addr,
            "127.0.0.1:" + std::to_string(primary->port()));
  EXPECT_TRUE(SameItems(SortedDump(*rep1), truth));

  // The stats documents advertise the replication topology.
  auto rep_json = rclient->Stats();
  ASSERT_TRUE(rep_json.ok());
  EXPECT_NE(rep_json->find("\"role\": \"replica\""), std::string::npos)
      << *rep_json;
  auto prim_json = client->Stats();
  ASSERT_TRUE(prim_json.ok());
  EXPECT_NE(prim_json->find("\"role\": \"primary\""), std::string::npos)
      << *prim_json;
  EXPECT_NE(prim_json->find("\"replicas\": ["), std::string::npos)
      << *prim_json;
}

TEST(ReplicaConsistencyTest, LateJoinerBootstrapsFromSnapshot) {
  // A replica that dials in after the primary has checkpointed must
  // bootstrap from the snapshot (not replay from seq 1) and still
  // converge exactly.
  persist::MemEnv prim_env, rep_env;
  ServerOptions popts = PrimaryOptions(&prim_env);
  auto primary = MustStart(popts);
  ASSERT_NE(primary, nullptr);
  auto client = Dial(*primary);
  std::map<ItemId, Weight> shadow;
  for (int i = 0; i < 120; ++i) {
    const Weight w{static_cast<uint64_t>(i % 13 + 1), 0};
    auto id = client->Insert(w);
    ASSERT_TRUE(id.ok());
    shadow[*id] = w;
  }
  const std::vector<ItemRecord> truth = SortedDump(*primary);
  ASSERT_EQ(truth.size(), shadow.size());

  auto replica = MustStart(ReplicaOptions(&rep_env, primary->port()));
  ASSERT_NE(replica, nullptr);
  ASSERT_TRUE(AwaitCatchUp(*replica, truth, 10000));
  EXPECT_GT(replica->replica_epoch(), 0u);
}

}  // namespace
}  // namespace server
}  // namespace dpss
