// Contract tests for the workload-diversity APIs (core/sampler.h):
//   * SampleDistinct — the k-distinct marginals match the exact
//     without-replacement law (frequency-gated per backend);
//   * Decay — decay-then-read is weight-for-weight identical to an
//     explicit SetWeight loop when the weights divide exactly;
//   * TopK / ItemsAbove — agree with a dump-and-sort oracle;
//   * a pending (lazy) decay factor survives snapshot → crash → recover.
//
// These pin the *semantics*; sampler_contract_test.cc pins the capability
// gating (flag clear => kUnsupported) for the same methods.

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sampler.h"
#include "persist/env.h"
#include "persist/recovery.h"
#include "tests/statistical.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace dpss {
namespace {

using persist::DurableOptions;
using persist::DurableSampler;
using persist::MemEnv;
using persist::RecoveryManager;
using testing_util::ExpectFrequencyGate;

// The same backend sweep as the contract suite, minus the exhaustive
// sharded cross-product: every registered backend plus one sharded
// composition (whose cross-shard WOR coupling is the novel code path).
std::vector<std::string> WorkloadBackends() {
  std::vector<std::string> names = RegisteredSamplerNames();
  names.push_back("sharded4:halt");
  return names;
}

class WorkloadApisTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Sampler> Make(uint64_t seed) const {
    SamplerSpec spec;
    spec.seed = seed;
    std::unique_ptr<Sampler> s = MakeSampler(GetParam(), spec);
    EXPECT_NE(s, nullptr);
    return s;
  }
};

// --- SampleDistinct: exact k = 2 marginals --------------------------------
//
// Successive weighted sampling without replacement: the first draw picks x
// with w_x/W; the second picks x with w_x/(W - w_y) given first draw y. So
//   P(x in 2-sample) = w_x/W + sum_{y != x} (w_y/W) * w_x/(W - w_y).
// This is NOT proportional to w_x — heavy items are relatively discounted
// (they crowd themselves out) — so a with-replacement-then-dedup bug or a
// wrong residual law shifts these marginals detectably.
TEST_P(WorkloadApisTest, TwoDistinctMarginalsMatchTheWorLaw) {
  auto s = Make(2024);
  ASSERT_NE(s, nullptr);
  if (!s->capabilities().sample_distinct) GTEST_SKIP();

  const std::vector<uint64_t> weights = {5, 20, 35, 60};
  const double total = 120.0;
  std::vector<ItemId> ids;
  ASSERT_TRUE(s->InsertBatch(weights, &ids).ok());

  std::vector<double> probs(weights.size());
  for (size_t x = 0; x < weights.size(); ++x) {
    const double wx = static_cast<double>(weights[x]);
    double p = wx / total;
    for (size_t y = 0; y < weights.size(); ++y) {
      if (y == x) continue;
      const double wy = static_cast<double>(weights[y]);
      p += (wy / total) * wx / (total - wy);
    }
    probs[x] = p;
  }

  const uint64_t trials = 30000;
  std::vector<uint64_t> hits(weights.size(), 0);
  std::vector<ItemId> out;
  for (uint64_t t = 0; t < trials; ++t) {
    ASSERT_TRUE(s->SampleDistinct(2, &out).ok());
    ASSERT_EQ(out.size(), 2u);
    ASSERT_NE(out[0], out[1]);
    for (const ItemId id : out) {
      for (size_t i = 0; i < ids.size(); ++i) hits[i] += id == ids[i];
    }
  }
  // 4 items x 6 backends: the aggregate z bound (tests/statistical.h).
  ExpectFrequencyGate(hits, trials, probs, 4.75,
                      GetParam() + "/SampleDistinct(2)");
}

// SampleDistinct must leave no trace: weights, totals and the structural
// invariants are exactly what they were before the draws (the park/restore
// implementation detail must not leak).
TEST_P(WorkloadApisTest, SampleDistinctLeavesStateUntouched) {
  auto s = Make(7);
  ASSERT_NE(s, nullptr);
  if (!s->capabilities().sample_distinct) GTEST_SKIP();

  std::vector<ItemId> ids;
  const std::vector<uint64_t> seed_weights = {3, 11, 29, 170, 4096};
  ASSERT_TRUE(s->InsertBatch(seed_weights, &ids).ok());
  const BigUInt total = s->TotalWeight();

  std::vector<ItemId> out;
  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(s->SampleDistinct(3, &out).ok());
  }
  EXPECT_EQ(s->TotalWeight(), total);
  EXPECT_EQ(s->GetWeight(ids[0])->mult, 3u);
  EXPECT_EQ(s->GetWeight(ids[3])->mult, 170u);
  EXPECT_EQ(s->GetWeight(ids[4])->mult, 4096u);
  EXPECT_TRUE(s->CheckInvariants().ok());
}

// --- Decay: equivalence with the explicit SetWeight loop ------------------
//
// With weights that the factor divides exactly there is no floor loss, so
// Decay(f) must leave every observable — per-item GetWeight, TotalWeight,
// DumpItems — bit-identical to setting each weight to w*num/den by hand.
// This holds for the O(1)-metadata lazy path ("halt") and the honest O(n)
// rewrites alike.
TEST_P(WorkloadApisTest, DecayMatchesExplicitSetWeightLoop) {
  auto decayed = Make(91);
  auto manual = Make(91);
  ASSERT_NE(decayed, nullptr);
  ASSERT_NE(manual, nullptr);
  if (!decayed->capabilities().decay) GTEST_SKIP();

  // Multiples of 8: survive two rounds of 3/4 exactly (w * 9/16).
  std::vector<uint64_t> weights;
  RandomEngine wgen(5);
  for (int i = 0; i < 64; ++i) weights.push_back((wgen.NextBelow(500) + 1) * 16);
  std::vector<ItemId> dec_ids, man_ids;
  ASSERT_TRUE(decayed->InsertBatch(weights, &dec_ids).ok());
  ASSERT_TRUE(manual->InsertBatch(weights, &man_ids).ok());
  ASSERT_EQ(dec_ids, man_ids);

  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(decayed->Decay({3, 4}).ok());
    for (size_t i = 0; i < man_ids.size(); ++i) {
      const Weight w = *manual->GetWeight(man_ids[i]);
      ASSERT_TRUE(manual->SetWeight(man_ids[i], Weight{w.mult / 4 * 3, w.exp})
                      .ok());
    }
    EXPECT_EQ(decayed->TotalWeight(), manual->TotalWeight())
        << "round " << round;
  }
  for (size_t i = 0; i < dec_ids.size(); ++i) {
    EXPECT_EQ(decayed->GetWeight(dec_ids[i])->mult,
              manual->GetWeight(man_ids[i])->mult)
        << "item " << i;
  }

  // Decay interleaves with ordinary mutations without corrupting either.
  ASSERT_TRUE(decayed->Erase(dec_ids[0]).ok());
  ASSERT_TRUE(manual->Erase(man_ids[0]).ok());
  const auto dn = decayed->Insert(uint64_t{1024});
  const auto mn = manual->Insert(uint64_t{1024});
  ASSERT_TRUE(dn.ok() && mn.ok());
  EXPECT_EQ(*dn, *mn);
  ASSERT_TRUE(decayed->Decay({1, 2}).ok());
  for (const ItemId id : {man_ids[5], man_ids[6], *mn}) {
    const Weight w = *manual->GetWeight(id);
    ASSERT_TRUE(manual->SetWeight(id, Weight{w.mult / 2, w.exp}).ok());
  }
  for (size_t i = 7; i < man_ids.size(); ++i) {
    const Weight w = *manual->GetWeight(man_ids[i]);
    ASSERT_TRUE(manual->SetWeight(man_ids[i], Weight{w.mult / 2, w.exp}).ok());
  }
  for (size_t i = 1; i < 5; ++i) {
    const Weight w = *manual->GetWeight(man_ids[i]);
    ASSERT_TRUE(manual->SetWeight(man_ids[i], Weight{w.mult / 2, w.exp}).ok());
  }
  EXPECT_EQ(decayed->TotalWeight(), manual->TotalWeight());
  EXPECT_EQ(decayed->GetWeight(*dn)->mult, 512u);
  EXPECT_TRUE(decayed->CheckInvariants().ok());
  EXPECT_TRUE(manual->CheckInvariants().ok());
}

// Decay through ApplyBatch: one kDecay op among ordinary mutations applies
// at its position in the batch, identically to the direct call.
TEST_P(WorkloadApisTest, DecayInsideApplyBatchAppliesInOrder) {
  auto batched = Make(13);
  auto direct = Make(13);
  ASSERT_NE(batched, nullptr);
  ASSERT_NE(direct, nullptr);
  if (!batched->capabilities().decay) GTEST_SKIP();

  std::vector<ItemId> b_ids, d_ids;
  const std::vector<uint64_t> seed_weights = {8, 24, 40};
  ASSERT_TRUE(batched->InsertBatch(seed_weights, &b_ids).ok());
  ASSERT_TRUE(direct->InsertBatch(seed_weights, &d_ids).ok());

  // Halve everything, then insert 100 — the insert must NOT be halved.
  const std::vector<Op> ops = {Op::Decay({1, 2}), Op::Insert(uint64_t{100})};
  std::vector<ItemId> b_new;
  ASSERT_TRUE(batched->ApplyBatch(ops, &b_new).ok());
  ASSERT_TRUE(direct->Decay({1, 2}).ok());
  const auto d_new = direct->Insert(uint64_t{100});
  ASSERT_TRUE(d_new.ok());

  ASSERT_EQ(b_new.size(), 1u);
  EXPECT_EQ(b_new[0], *d_new);
  EXPECT_EQ(batched->TotalWeight(), direct->TotalWeight());
  EXPECT_EQ(batched->GetWeight(b_ids[0])->mult, 4u);
  EXPECT_EQ(batched->GetWeight(b_new[0])->mult, 100u);
  EXPECT_TRUE(batched->CheckInvariants().ok());
}

// --- TopK / ItemsAbove: dump-and-sort oracle ------------------------------

TEST_P(WorkloadApisTest, TopKMatchesSortOracle) {
  auto s = Make(55);
  ASSERT_NE(s, nullptr);
  if (!s->capabilities().top_k) GTEST_SKIP();

  // Random weights with deliberate ties and a parked (zero) item.
  RandomEngine wgen(21);
  std::vector<uint64_t> weights;
  for (int i = 0; i < 120; ++i) weights.push_back(wgen.NextBelow(40));
  std::vector<ItemId> ids;
  ASSERT_TRUE(s->InsertBatch(weights, &ids).ok());

  // Oracle: live non-zero weights, descending.
  std::vector<uint64_t> sorted;
  for (const uint64_t w : weights) {
    if (w != 0) sorted.push_back(w);
  }
  std::sort(sorted.rbegin(), sorted.rend());

  for (const uint64_t k : {1u, 7u, 64u, 500u}) {
    std::vector<ItemId> out;
    ASSERT_TRUE(s->TopK(k, &out).ok());
    const size_t expect_n = std::min<size_t>(k, sorted.size());
    ASSERT_EQ(out.size(), expect_n) << "k=" << k;
    // Ties make the id choice ambiguous; the weight sequence is not.
    std::vector<uint64_t> got;
    for (const ItemId id : out) got.push_back(s->GetWeight(id)->mult);
    EXPECT_EQ(got, std::vector<uint64_t>(sorted.begin(),
                                         sorted.begin() + expect_n))
        << "k=" << k;
    // Distinct ids even under weight ties.
    std::vector<ItemId> uniq = out;
    std::sort(uniq.begin(), uniq.end());
    EXPECT_EQ(std::unique(uniq.begin(), uniq.end()), uniq.end()) << "k=" << k;
  }
}

TEST_P(WorkloadApisTest, ItemsAboveMatchesFilterOracle) {
  auto s = Make(56);
  ASSERT_NE(s, nullptr);
  if (!s->capabilities().top_k) GTEST_SKIP();

  RandomEngine wgen(22);
  std::vector<uint64_t> weights;
  for (int i = 0; i < 80; ++i) weights.push_back(wgen.NextBelow(1000));
  std::vector<ItemId> ids;
  ASSERT_TRUE(s->InsertBatch(weights, &ids).ok());

  for (const uint64_t threshold : {1u, 250u, 999u, 5000u}) {
    std::vector<ItemId> out;
    ASSERT_TRUE(s->ItemsAbove(Weight{threshold, 0}, &out).ok());
    std::vector<ItemId> expect;
    for (size_t i = 0; i < weights.size(); ++i) {
      if (weights[i] != 0 && weights[i] >= threshold) expect.push_back(ids[i]);
    }
    std::sort(out.begin(), out.end());
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(out, expect) << "threshold=" << threshold;
  }
}

// TopK under a *pending* lazy factor ("halt"): flooring does not preserve
// cross-exponent order, so the ranking must be computed on the decayed
// weights, not the stored ones. 3*2^1 = 6 and 5*2^0 = 5 swap places under
// f = 1/2 with floors: floor(3/2)*2^1 = 2 while floor(5/2) = 2... use
// values where the decayed order genuinely differs from the stored order.
TEST_P(WorkloadApisTest, TopKRanksDecayedWeightsNotStoredOnes) {
  auto s = Make(57);
  ASSERT_NE(s, nullptr);
  if (!s->capabilities().decay || !s->capabilities().top_k) GTEST_SKIP();

  // Stored order: a(12) > b(10). After Decay(1/3) with floor semantics:
  // a -> floor(12/3) = 4, b -> floor(10/3) = 3 — order kept; but
  // c(5) vs b(10): c -> 1, b -> 3. Use a case where floors tie and ids
  // must still be distinct, plus verify the ranking against GetWeight
  // (the floored observable) after the decay.
  const auto a = s->Insert(uint64_t{12});
  const auto b = s->Insert(uint64_t{10});
  const auto c = s->Insert(uint64_t{5});
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(s->Decay({1, 3}).ok());

  std::vector<ItemId> out;
  ASSERT_TRUE(s->TopK(3, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], *a);
  EXPECT_EQ(out[1], *b);
  EXPECT_EQ(out[2], *c);

  // ItemsAbove on the decayed observable: >= 3 keeps a and b only.
  ASSERT_TRUE(s->ItemsAbove(Weight{3, 0}, &out).ok());
  std::sort(out.begin(), out.end());
  std::vector<ItemId> expect = {*a, *b};
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(out, expect);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, WorkloadApisTest, ::testing::ValuesIn(WorkloadBackends()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return testing_util::GTestNameFromBackend(info.param);
    });

// --- Durability: a pending decay epoch survives crash + recovery ----------

DurableOptions HaltOptions(persist::Env* env) {
  DurableOptions opts;
  opts.backend = "halt";
  opts.spec.seed = 77;
  opts.wal_sync_every = 1;
  opts.env = env;
  return opts;
}

// The hard case for the lazy path: a checkpoint taken while a factor is
// still pending (the snapshot must carry the decay envelope), a further
// Decay logged only in the WAL suffix, then a crash. Recovery must replay
// the suffix against the restored pending state and land on exactly the
// weights the live run observed.
TEST(WorkloadDurabilityTest, PendingDecaySurvivesSnapshotCrashRecover) {
  MemEnv mem;
  ItemId a = 0, b = 0, c = 0;
  {
    auto opened = RecoveryManager::Open("state", HaltOptions(&mem));
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    DurableSampler& d = **opened;
    a = *d.Insert(uint64_t{16});
    b = *d.Insert(uint64_t{48});
    ASSERT_TRUE(d.Decay({3, 4}).ok());  // a=12, b=36; stays pending
    ASSERT_TRUE(d.Checkpoint().ok());   // snapshot with the envelope
    ASSERT_TRUE(d.Decay({1, 2}).ok());  // a=6, b=18; WAL suffix only
    c = *d.Insert(uint64_t{8});         // flushes the pending factor
    ASSERT_TRUE(d.SetWeight(a, uint64_t{6}).ok());  // no-op rewrite, logged
    EXPECT_EQ(d.GetWeight(b)->mult, 18u);
    // No clean shutdown: the destructor is the "crash" (everything above
    // was individually synced by wal_sync_every = 1).
  }
  auto reopened = RecoveryManager::Open("state", HaltOptions(&mem));
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  DurableSampler& d = **reopened;
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.GetWeight(a)->mult, 6u);
  EXPECT_EQ(d.GetWeight(b)->mult, 18u);
  EXPECT_EQ(d.GetWeight(c)->mult, 8u);
  EXPECT_EQ(d.TotalWeight(), BigUInt(uint64_t{32}));
  EXPECT_TRUE(d.CheckInvariants().ok());

  // The recovered sampler keeps working: another decay, another item.
  ASSERT_TRUE(d.Decay({1, 2}).ok());
  EXPECT_EQ(d.GetWeight(a)->mult, 3u);
  EXPECT_EQ(d.TotalWeight(), BigUInt(uint64_t{16}));
}

// A decay logged in the WAL with NO checkpoint at all: replay starts from
// the empty sampler and must re-apply inserts and the decay in order.
TEST(WorkloadDurabilityTest, DecayReplaysFromBareWal) {
  MemEnv mem;
  ItemId a = 0, b = 0;
  {
    auto opened = RecoveryManager::Open("state", HaltOptions(&mem));
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    DurableSampler& d = **opened;
    a = *d.Insert(uint64_t{100});
    b = *d.Insert(uint64_t{201});  // 201/3 = 67: divides exactly
    ASSERT_TRUE(d.Decay({1, 3}).ok());
  }
  auto reopened = RecoveryManager::Open("state", HaltOptions(&mem));
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  DurableSampler& d = **reopened;
  EXPECT_EQ(d.GetWeight(a)->mult, 33u);  // floor(100/3)
  EXPECT_EQ(d.GetWeight(b)->mult, 67u);
  EXPECT_TRUE(d.CheckInvariants().ok());
}

}  // namespace
}  // namespace dpss
