// Contract (failure-injection) tests: every documented precondition
// violation must abort with a CHECK failure rather than corrupt state or
// return garbage.

#include <gtest/gtest.h>

#include "baseline/bucket_jump.h"
#include "bigint/big_uint.h"
#include "bigint/rational.h"
#include "core/adapter.h"
#include "core/dpss_sampler.h"
#include "core/lookup_table.h"
#include "random/geometric.h"
#include "util/random.h"
#include "wordram/bitmap_sorted_list.h"

namespace dpss {
namespace {

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, BigUIntDivisionByZero) {
  EXPECT_DEATH(BigUInt::Div(BigUInt(uint64_t{5}), BigUInt()), "CHECK failed");
}

TEST(ContractDeathTest, BigUIntSubUnderflow) {
  EXPECT_DEATH(BigUInt::Sub(BigUInt(uint64_t{1}), BigUInt(uint64_t{2})),
               "CHECK failed");
}

TEST(ContractDeathTest, BigUIntNarrowingOverflow) {
  EXPECT_DEATH(BigUInt::PowerOfTwo(100).ToU64(), "CHECK failed");
  EXPECT_DEATH(BigUInt::PowerOfTwo(200).ToU128(), "CHECK failed");
}

TEST(ContractDeathTest, RationalZeroDenominator) {
  EXPECT_DEATH(BigRational(BigUInt(uint64_t{1}), BigUInt()), "CHECK failed");
}

TEST(ContractDeathTest, RationalLogOfZero) {
  EXPECT_DEATH(BigRational().FloorLog2(), "CHECK failed");
}

TEST(ContractDeathTest, BitmapUniverseTooLarge) {
  EXPECT_DEATH(BitmapSortedList(BitmapSortedList::kMaxUniverse + 1),
               "CHECK failed");
}

TEST(ContractDeathTest, GeometricBadBound) {
  RandomEngine rng(1);
  EXPECT_DEATH(
      SampleBoundedGeo(BigUInt(uint64_t{1}), BigUInt(uint64_t{2}), 0, rng),
      "CHECK failed");
  EXPECT_DEATH(SampleTruncatedGeo(BigUInt(), BigUInt(uint64_t{2}), 5, rng),
               "CHECK failed");
}

TEST(ContractDeathTest, SamplerEraseInvalidId) {
  DpssSampler s(1);
  EXPECT_DEATH(s.Erase(0), "CHECK failed");
  const auto id = s.Insert(5);
  s.Erase(id);
  EXPECT_DEATH(s.Erase(id), "CHECK failed");  // double erase
}

TEST(ContractDeathTest, SamplerWeightOutOfUniverse) {
  DpssSampler s(2);
  EXPECT_DEATH(s.InsertWeight(Weight(3, 300)), "CHECK failed");
}

TEST(ContractDeathTest, SamplerZeroDenominatorParameters) {
  DpssSampler s(3);
  s.Insert(1);
  EXPECT_DEATH(s.Sample({1, 0}, {0, 1}), "CHECK failed");
  EXPECT_DEATH(s.Sample({1, 1}, {0, 0}), "CHECK failed");
}

TEST(ContractDeathTest, AdapterWindowViolation) {
  Adapter a;
  a.Init(10, 4, 4);
  EXPECT_DEATH(a.SetCount(9, 1), "CHECK failed");   // below window, non-zero
  EXPECT_DEATH(a.SetCount(14, 2), "CHECK failed");  // above window, non-zero
  EXPECT_DEATH(a.SetCount(10, 16), "CHECK failed");  // count too wide
}

TEST(ContractDeathTest, AdapterOverWideWindow) {
  Adapter a;
  EXPECT_DEATH(a.Init(0, 17, 4), "CHECK failed");  // 68 bits > one word
}

TEST(ContractDeathTest, LookupTableOversizedParameters) {
  // K·bits must fit one word.
  EXPECT_DEATH(LookupTable(255, 9), "CHECK failed");
}

TEST(ContractDeathTest, BucketJumpZeroDenominator) {
  BucketJumpSampler s;
  EXPECT_DEATH(s.Insert(0, BigUInt(uint64_t{1}), BigUInt()), "CHECK failed");
}

TEST(ContractDeathTest, BucketJumpEraseInvalidHandle) {
  BucketJumpSampler s;
  EXPECT_DEATH(s.Erase(3), "CHECK failed");
}

}  // namespace
}  // namespace dpss
