// The Sampler interface contract, instantiated over every registered
// backend: construction through the registry, insert/erase/set-weight
// semantics, id safety across slot reuse, zero weights, statistical
// correctness of the sampling frequencies (z-scores per item plus a
// chi-square over the marginals), batched mutations, and the guarantee
// that no public-API misuse path aborts the process.
//
// This suite replaces the per-backend mirroring that used to live in
// baseline_test.cc (duplicated insert/erase/zero-weight checks per class);
// baseline_test.cc keeps only what is genuinely backend-specific.

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sampler.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace dpss {
namespace {

using testing_util::BernoulliZScore;
using testing_util::ExpectFrequencyGate;

// All contract queries run at (α, β) = (1, 0) — the SamplerSpec default
// for fixed-parameter backends — so one suite drives parameterized and
// fixed backends alike.
constexpr Rational64 kAlpha{1, 1};
constexpr Rational64 kBeta{0, 1};

class SamplerContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Sampler> Make(uint64_t seed = 42) const {
    SamplerSpec spec;
    spec.seed = seed;
    std::unique_ptr<Sampler> s = MakeSampler(GetParam(), spec);
    EXPECT_NE(s, nullptr);
    return s;
  }
};

TEST_P(SamplerContractTest, RegistryConstructsAndNames) {
  auto s = Make();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->name(), GetParam());
  EXPECT_TRUE(s->empty());
  EXPECT_EQ(MakeSampler("no-such-backend"), nullptr);
}

TEST_P(SamplerContractTest, InsertEraseSetWeightSemantics) {
  auto s = Make();
  const auto a = s->Insert(10);
  const auto b = s->Insert(90);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(s->size(), 2u);
  EXPECT_EQ(s->TotalWeight(), BigUInt(uint64_t{100}));
  EXPECT_TRUE(s->Contains(*a));
  ASSERT_TRUE(s->GetWeight(*a).ok());
  EXPECT_EQ(s->GetWeight(*a)->mult, 10u);

  // In-place update adjusts the total and keeps the id valid.
  ASSERT_TRUE(s->SetWeight(*b, 45).ok());
  EXPECT_EQ(s->TotalWeight(), BigUInt(uint64_t{55}));
  EXPECT_TRUE(s->Contains(*b));
  EXPECT_EQ(s->GetWeight(*b)->mult, 45u);

  ASSERT_TRUE(s->Erase(*a).ok());
  EXPECT_EQ(s->size(), 1u);
  EXPECT_EQ(s->TotalWeight(), BigUInt(uint64_t{45}));
  EXPECT_FALSE(s->Contains(*a));
}

TEST_P(SamplerContractTest, MisuseIsRecoverableNotFatal) {
  auto s = Make();
  const auto a = s->Insert(7);
  ASSERT_TRUE(a.ok());

  // Ids that were never issued.
  EXPECT_EQ(s->Erase(*a + 12345).code(), StatusCode::kInvalidId);
  EXPECT_EQ(s->SetWeight(*a + 12345, 1).code(), StatusCode::kInvalidId);
  EXPECT_EQ(s->GetWeight(*a + 12345).status().code(),
            StatusCode::kInvalidId);

  // Double erase.
  ASSERT_TRUE(s->Erase(*a).ok());
  EXPECT_EQ(s->Erase(*a).code(), StatusCode::kInvalidId);

  // Malformed query parameters.
  std::vector<ItemId> out;
  EXPECT_EQ(s->SampleInto({1, 0}, kBeta, &out).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(s->SampleInto(kAlpha, kBeta, nullptr).code(),
            StatusCode::kInvalidArgument);

  // The sampler is still fully usable afterwards.
  const auto b = s->Insert(3);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(s->SampleInto(kAlpha, kBeta, &out).ok());
  EXPECT_TRUE(s->CheckInvariants().ok());
}

TEST_P(SamplerContractTest, StaleIdsNeverAliasReusedSlots) {
  auto s = Make();
  const auto a = s->Insert(11);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(s->Erase(*a).ok());
  // The freed slot is reused; the stale id must stay invalid regardless.
  const auto b = s->Insert(22);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(SlotIndexOf(*b), SlotIndexOf(*a)) << "expected slot reuse";
  EXPECT_NE(*b, *a);
  EXPECT_FALSE(s->Contains(*a));
  EXPECT_TRUE(s->Contains(*b));
  EXPECT_EQ(s->Erase(*a).code(), StatusCode::kInvalidId);
  EXPECT_EQ(s->GetWeight(*a).status().code(), StatusCode::kInvalidId);
  EXPECT_EQ(s->GetWeight(*b)->mult, 22u);

  // Erase-reinsert cycles keep generating distinct ids for one slot.
  ItemId prev = *b;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(s->Erase(prev).ok());
    const auto fresh = s->Insert(5);
    ASSERT_TRUE(fresh.ok());
    EXPECT_NE(*fresh, prev);
    EXPECT_FALSE(s->Contains(prev));
    prev = *fresh;
  }
}

TEST_P(SamplerContractTest, ZeroWeightItemsAreParkedNotSampled) {
  auto s = Make();
  const auto zero = s->Insert(0);
  const auto live = s->Insert(50);
  ASSERT_TRUE(zero.ok());
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(s->size(), 2u);  // parked items count toward size
  EXPECT_EQ(s->TotalWeight(), BigUInt(uint64_t{50}));

  std::vector<ItemId> out;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(s->SampleInto(kAlpha, kBeta, &out).ok());
    for (const ItemId id : out) EXPECT_NE(id, *zero);
  }

  // Revival via SetWeight: with (α, β) = (1, 0) and equal weights, the
  // revived item must show up about half the time.
  ASSERT_TRUE(s->SetWeight(*zero, 50).ok());
  RandomEngine rng(7);
  uint64_t hits = 0;
  const uint64_t trials = 4000;
  for (uint64_t t = 0; t < trials; ++t) {
    ASSERT_TRUE(s->SampleInto(kAlpha, kBeta, rng, &out).ok());
    for (const ItemId id : out) hits += id == *zero;
  }
  EXPECT_LE(std::abs(BernoulliZScore(hits, trials, 0.5)), 4.5);

  // Parking again via SetWeight(., 0).
  ASSERT_TRUE(s->SetWeight(*zero, 0).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(s->SampleInto(kAlpha, kBeta, &out).ok());
    for (const ItemId id : out) EXPECT_NE(id, *zero);
  }
  EXPECT_TRUE(s->CheckInvariants().ok());
}

// Statistical contract: under (α, β) = (1, 0) every item's inclusion
// probability is min{w/Σw, 1}. The shared frequency gate
// (tests/statistical.h) applies per-item z-scores (biased marginals) plus
// a chi-square over the hit counts (collectively-off frequencies).
TEST_P(SamplerContractTest, SamplingFrequenciesMatchExactMarginals) {
  auto s = Make(1234);
  const std::vector<uint64_t> weights = {1, 10, 100, 1000, 0, 500, 2048};
  std::vector<ItemId> ids;
  ASSERT_TRUE(s->InsertBatch(weights, &ids).ok());
  const double total = 3659.0;

  RandomEngine rng(77);
  const uint64_t trials = 60000;
  std::vector<uint64_t> hits(weights.size(), 0);
  std::vector<ItemId> out;
  for (uint64_t t = 0; t < trials; ++t) {
    ASSERT_TRUE(s->SampleInto(kAlpha, kBeta, rng, &out).ok());
    for (const ItemId id : out) {
      for (size_t i = 0; i < ids.size(); ++i) hits[i] += id == ids[i];
    }
  }
  std::vector<double> probs(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    probs[i] = static_cast<double>(weights[i]) / total;
  }
  ExpectFrequencyGate(hits, trials, probs, 4.5, GetParam());
}

TEST_P(SamplerContractTest, BatchedMutationsMatchSingles) {
  auto batched = Make(5);
  auto singles = Make(5);

  // InsertBatch == loop of Insert.
  std::vector<uint64_t> weights;
  RandomEngine wgen(9);
  for (int i = 0; i < 200; ++i) weights.push_back(wgen.NextBelow(1 << 12));
  std::vector<ItemId> batch_ids, single_ids;
  ASSERT_TRUE(batched->InsertBatch(weights, &batch_ids).ok());
  for (const uint64_t w : weights) {
    single_ids.push_back(*singles->Insert(w));
  }
  ASSERT_EQ(batch_ids.size(), weights.size());
  EXPECT_EQ(batch_ids, single_ids);
  EXPECT_EQ(batched->TotalWeight(), singles->TotalWeight());

  // ApplyBatch of mixed ops == the same ops one by one.
  std::vector<Op> ops;
  for (int i = 0; i < 50; ++i) {
    ops.push_back(Op::Insert(uint64_t{100} + i));
    ops.push_back(Op::SetWeight(batch_ids[i], 7 * i));
    ops.push_back(Op::Erase(batch_ids[100 + i]));
  }
  std::vector<ItemId> batch_new, single_new;
  ASSERT_TRUE(batched->ApplyBatch(ops, &batch_new).ok());
  for (int i = 0; i < 50; ++i) {
    single_new.push_back(*singles->Insert(100 + i));
    ASSERT_TRUE(singles->SetWeight(single_ids[i], 7 * i).ok());
    ASSERT_TRUE(singles->Erase(single_ids[100 + i]).ok());
  }
  EXPECT_EQ(batch_new, single_new);
  EXPECT_EQ(batched->size(), singles->size());
  EXPECT_EQ(batched->TotalWeight(), singles->TotalWeight());
  EXPECT_TRUE(batched->CheckInvariants().ok());

  // A failing op stops the batch, reports the error, and leaves the
  // sampler consistent: earlier ops applied, later ops not.
  const uint64_t size_before = batched->size();
  const BigUInt total_before = batched->TotalWeight();
  const std::vector<Op> bad = {
      Op::Insert(uint64_t{3}),
      Op::Erase(ItemId{0xdeadbeef} << 20),  // never issued
      Op::Insert(uint64_t{5}),
  };
  std::vector<ItemId> bad_ids;
  EXPECT_EQ(batched->ApplyBatch(bad, &bad_ids).code(),
            StatusCode::kInvalidId);
  EXPECT_EQ(bad_ids.size(), 1u);  // first insert landed
  EXPECT_EQ(batched->size(), size_before + 1);
  EXPECT_EQ(batched->TotalWeight(), total_before + BigUInt(uint64_t{3}));
  EXPECT_TRUE(batched->CheckInvariants().ok());
}

TEST_P(SamplerContractTest, CapabilityGatedPathsFailSoftly) {
  auto s = Make();
  const Sampler::Capabilities caps = s->capabilities();
  ASSERT_TRUE(s->Insert(12).ok());

  std::vector<ItemId> out;
  const Status other_params = s->SampleInto({3, 5}, {7, 2}, &out);
  if (caps.parameterized) {
    EXPECT_TRUE(other_params.ok());
  } else {
    EXPECT_EQ(other_params.code(), StatusCode::kUnsupported);
  }

  // A float weight far beyond uint64.
  const auto big = s->InsertWeight(Weight(3, 200));
  if (caps.float_weights) {
    ASSERT_TRUE(big.ok());
    EXPECT_TRUE(s->Erase(*big).ok());
  } else {
    EXPECT_EQ(big.status().code(), StatusCode::kWeightOverflow);
  }
  // A weight no backend can hold (beyond the level-1 universe).
  EXPECT_EQ(s->InsertWeight(Weight(~uint64_t{0}, 1u << 30)).status().code(),
            StatusCode::kWeightOverflow);

  std::string bytes;
  const Status ser = s->Serialize(&bytes);
  if (caps.snapshots) {
    EXPECT_TRUE(ser.ok());
    EXPECT_TRUE(s->Restore(bytes).ok());
    EXPECT_EQ(s->Restore("garbage").code(), StatusCode::kBadSnapshot);
    EXPECT_EQ(s->size(), 1u);  // failed restore leaves the state alone
  } else {
    EXPECT_EQ(ser.code(), StatusCode::kUnsupported);
    EXPECT_EQ(s->Restore(bytes).code(), StatusCode::kUnsupported);
  }

  const auto mu = s->ExpectedSampleSize(kAlpha, kBeta);
  if (caps.expected_size) {
    ASSERT_TRUE(mu.ok());
    EXPECT_NEAR(*mu, 1.0, 1e-9);  // single item, (α, β) = (1, 0)
  } else {
    EXPECT_EQ(mu.status().code(), StatusCode::kUnsupported);
  }

  EXPECT_FALSE(s->DebugString().empty());
  EXPECT_GT(s->ApproxMemoryBytes(), 0u);
}

// The optional-API sweep: every method gated by a Capabilities flag must
// either work (flag set) or return kUnsupported (flag clear) — never
// garbage results, never a crash. New optional methods must be added to
// this sweep alongside their flag.
TEST_P(SamplerContractTest, OptionalApisHonorCapabilityFlags) {
  auto s = Make(21);
  const Sampler::Capabilities caps = s->capabilities();
  std::vector<ItemId> ids;
  const std::vector<uint64_t> seed_weights = {40, 12, 28};
  ASSERT_TRUE(s->InsertBatch(seed_weights, &ids).ok());
  const BigUInt total_before = s->TotalWeight();

  // Decay: flag clear => kUnsupported and untouched totals; flag set =>
  // weights scale down (floor semantics) and a no-op factor is free.
  const Status dec = s->Decay({1, 2});
  if (caps.decay) {
    ASSERT_TRUE(dec.ok()) << dec.message();
    EXPECT_EQ(s->GetWeight(ids[0])->mult, 20u);
    EXPECT_EQ(s->GetWeight(ids[1])->mult, 6u);
    EXPECT_TRUE(s->Decay({1, 1}).ok());  // identity factor: always legal
    // Malformed factors are rejected without touching state.
    EXPECT_EQ(s->Decay({0, 3}).code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(s->Decay({3, 2}).code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(s->Decay({1, 0}).code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(s->GetWeight(ids[2])->mult, 14u);
  } else {
    EXPECT_EQ(dec.code(), StatusCode::kUnsupported);
    EXPECT_EQ(s->TotalWeight(), total_before);
  }

  // SampleDistinct: flag clear => kUnsupported; flag set => exactly
  // min(k, live) distinct live ids, and misuse stays recoverable.
  std::vector<ItemId> out;
  const Status sd = s->SampleDistinct(2, &out);
  if (caps.sample_distinct) {
    ASSERT_TRUE(sd.ok()) << sd.message();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_NE(out[0], out[1]);
    for (const ItemId id : out) EXPECT_TRUE(s->Contains(id));
    ASSERT_TRUE(s->SampleDistinct(50, &out).ok());  // k > live: all items
    EXPECT_EQ(out.size(), 3u);
    EXPECT_EQ(s->SampleDistinct(1, nullptr).code(),
              StatusCode::kInvalidArgument);
  } else {
    EXPECT_EQ(sd.code(), StatusCode::kUnsupported);
  }

  // TopK / ItemsAbove share the top_k flag. Whether or not the decay
  // branch ran, the weight ordering is ids[0] > ids[2] > ids[1].
  const Status tk = s->TopK(2, &out);
  if (caps.top_k) {
    ASSERT_TRUE(tk.ok()) << tk.message();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], ids[0]);
    EXPECT_EQ(out[1], ids[2]);
    ASSERT_TRUE(s->TopK(100, &out).ok());  // k > live: everything, ranked
    EXPECT_EQ(out.size(), 3u);
    // Threshold just above the lightest item keeps the heavier two.
    const Weight mid = *s->GetWeight(ids[1]);
    ASSERT_TRUE(s->ItemsAbove(Weight{mid.mult + 1, mid.exp}, &out).ok());
    EXPECT_EQ(out.size(), 2u);
    EXPECT_EQ(s->TopK(1, nullptr).code(), StatusCode::kInvalidArgument);
  } else {
    EXPECT_EQ(tk.code(), StatusCode::kUnsupported);
    EXPECT_EQ(s->ItemsAbove(Weight{1, 0}, &out).code(),
              StatusCode::kUnsupported);
  }

  // The sampler is still fully usable after the sweep.
  EXPECT_TRUE(s->Insert(5).ok());
  EXPECT_TRUE(s->CheckInvariants().ok());
}

// W(α, β) = 0 (α = β = 0): every non-zero-weight item has probability
// min{w/0, 1} = 1 and must be returned; parked items stay out. Runs the
// fixed-parameter backends with the spec pinned to (0, 0).
TEST_P(SamplerContractTest, WZeroSelectsEveryNonZeroItem) {
  SamplerSpec spec;
  spec.seed = 3;
  spec.fixed_alpha = {0, 1};
  spec.fixed_beta = {0, 1};
  auto s = MakeSampler(GetParam(), spec);
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->Insert(5).ok());
  ASSERT_TRUE(s->Insert(0).ok());
  ASSERT_TRUE(s->Insert(9).ok());
  std::vector<ItemId> out;
  ASSERT_TRUE(s->SampleInto({0, 1}, {0, 1}, &out).ok());
  EXPECT_EQ(out.size(), 2u);
}

// Deterministic churn through the interface: every backend survives a
// mixed op sequence with its bookkeeping (size, Σw, Contains) agreeing
// with a reference model.
TEST_P(SamplerContractTest, ChurnKeepsBookkeepingExact) {
  auto s = Make(99);
  RandomEngine rng(17);
  std::vector<ItemId> live;
  std::vector<uint64_t> live_w;
  unsigned __int128 total = 0;
  for (int step = 0; step < 600; ++step) {
    const uint64_t op = rng.NextBelow(10);
    if (op < 5 || live.empty()) {
      const uint64_t w = rng.NextBelow(1 << 10);
      const auto id = s->Insert(w);
      ASSERT_TRUE(id.ok());
      live.push_back(*id);
      live_w.push_back(w);
      total += w;
    } else if (op < 8) {
      const size_t i = rng.NextBelow(live.size());
      ASSERT_TRUE(s->Erase(live[i]).ok());
      total -= live_w[i];
      live[i] = live.back();
      live_w[i] = live_w.back();
      live.pop_back();
      live_w.pop_back();
    } else {
      const size_t i = rng.NextBelow(live.size());
      const uint64_t w = rng.NextBelow(1 << 10);
      ASSERT_TRUE(s->SetWeight(live[i], w).ok());
      total -= live_w[i];
      total += w;
      live_w[i] = w;
    }
  }
  EXPECT_EQ(s->size(), live.size());
  EXPECT_EQ(s->TotalWeight(), BigUInt::FromU128(total));
  for (const ItemId id : live) EXPECT_TRUE(s->Contains(id));
  EXPECT_TRUE(s->CheckInvariants().ok());
}

// Restore-into-non-empty audit (every backend implements snapshots now):
// Restore must *replace* the state — slots, generations, free-list order —
// not merge into it. The regression this pins: a restore that keeps the
// destination's old slots or generations lets a pre-restore id alias
// whatever later reuses its slot.
TEST_P(SamplerContractTest, RestoreReplacesStateCompletely) {
  if (!Make()->capabilities().snapshots) GTEST_SKIP();

  // Source: three items, one erased so the snapshot carries a bumped
  // generation and a non-trivial free list.
  auto src = Make(31);
  const auto a = src->Insert(10);
  const auto b = src->Insert(20);
  const auto c = src->Insert(30);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(src->Erase(*b).ok());
  std::string bytes;
  ASSERT_TRUE(src->Serialize(&bytes).ok());

  // Destination: *more* items than the snapshot, all still live, plus an
  // extra erase/insert cycle so its generations diverge from the source's.
  auto dst = Make(32);
  std::vector<ItemId> dst_ids;
  for (int i = 0; i < 6; ++i) {
    const auto id = dst->Insert(100 + i);
    ASSERT_TRUE(id.ok());
    dst_ids.push_back(*id);
  }
  ASSERT_TRUE(dst->Erase(dst_ids[0]).ok());
  dst_ids[0] = *dst->Insert(7);  // bumps the slot's generation past 0

  ASSERT_TRUE(dst->Restore(bytes).ok());

  // The destination now *is* the source state.
  EXPECT_EQ(dst->size(), src->size());
  EXPECT_EQ(dst->TotalWeight(), src->TotalWeight());
  EXPECT_TRUE(dst->Contains(*a));
  EXPECT_TRUE(dst->Contains(*c));
  EXPECT_FALSE(dst->Contains(*b));  // erased before the snapshot: stays dead
  EXPECT_EQ(dst->GetWeight(*a)->mult, 10u);
  EXPECT_EQ(dst->GetWeight(*c)->mult, 30u);

  // Pre-restore ids beyond the snapshot's slot table are gone, and the
  // generation-diverged slot must not alias (its pre-restore generation
  // exceeded the snapshot's). Ids are instance-local tokens, so a dst id
  // whose numeric value coincides with a live snapshot id legitimately
  // stays valid — those are skipped; every other pre-restore id must die.
  int checked = 0;
  for (const ItemId id : dst_ids) {
    if (src->Contains(id)) continue;
    ++checked;
    EXPECT_FALSE(dst->Contains(id)) << "pre-restore id survived Restore";
    EXPECT_EQ(dst->Erase(id).code(), StatusCode::kInvalidId);
  }
  EXPECT_GE(checked, 3) << "test design: too few non-colliding ids";

  // Post-restore inserts behave exactly like post-serialize inserts on the
  // source: same freed slot, same (bumped) generation => same id.
  const auto src_next = src->Insert(55);
  const auto dst_next = dst->Insert(55);
  ASSERT_TRUE(src_next.ok() && dst_next.ok());
  EXPECT_EQ(*dst_next, *src_next);
  EXPECT_EQ(SlotIndexOf(*dst_next), SlotIndexOf(*b)) << "expected slot reuse";
  EXPECT_NE(*dst_next, *b);
  EXPECT_TRUE(dst->CheckInvariants().ok());
}

// The contract is also the thread-safety wrapper's conformance gate: every
// registered backend must behave identically behind "sharded<K>:<name>"
// (concurrent/sharded_sampler.h) for both a single shard and a sharded
// configuration. "sharded:halt" additionally exercises the plain grammar
// that takes the shard count from SamplerSpec::num_shards.
std::vector<std::string> ContractBackends() {
  std::vector<std::string> names = RegisteredSamplerNames();
  for (const std::string& base : RegisteredSamplerNames()) {
    names.push_back("sharded1:" + base);
    names.push_back("sharded8:" + base);
  }
  names.push_back("sharded:halt");
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, SamplerContractTest,
    ::testing::ValuesIn(ContractBackends()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return testing_util::GTestNameFromBackend(info.param);
    });

}  // namespace
}  // namespace dpss
