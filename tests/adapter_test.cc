// Tests for the packed adapter: count storage, window semantics, and O(1)
// configuration extraction with out-of-window zero fill.

#include "core/adapter.h"

#include <gtest/gtest.h>

namespace dpss {
namespace {

TEST(AdapterTest, SetGetRoundTrip) {
  Adapter a;
  a.Init(/*first_bucket=*/10, /*slots=*/12, /*bits_per_count=*/4);
  for (int b = 10; b < 22; ++b) {
    a.SetCount(b, (b * 7) % 16);
  }
  for (int b = 10; b < 22; ++b) {
    EXPECT_EQ(a.GetCount(b), (b * 7) % 16) << b;
  }
}

TEST(AdapterTest, OutOfWindowReadsAreZero) {
  Adapter a;
  a.Init(5, 8, 3);
  a.SetCount(5, 7);
  a.SetCount(12, 6);
  EXPECT_EQ(a.GetCount(4), 0);
  EXPECT_EQ(a.GetCount(13), 0);
  EXPECT_EQ(a.GetCount(-3), 0);
  EXPECT_EQ(a.GetCount(100), 0);
}

TEST(AdapterTest, SetZeroOutOfWindowIsIgnored) {
  Adapter a;
  a.Init(5, 4, 3);
  a.SetCount(0, 0);   // silently ignored
  a.SetCount(50, 0);  // silently ignored
  EXPECT_EQ(a.GetCount(0), 0);
}

TEST(AdapterTest, OverwriteCount) {
  Adapter a;
  a.Init(0, 10, 4);
  a.SetCount(3, 9);
  EXPECT_EQ(a.GetCount(3), 9);
  a.SetCount(3, 2);
  EXPECT_EQ(a.GetCount(3), 2);
  a.SetCount(3, 0);
  EXPECT_EQ(a.GetCount(3), 0);
}

TEST(AdapterTest, ExtractConfigAligned) {
  Adapter a;
  a.Init(20, 10, 4);
  for (int b = 20; b < 30; ++b) a.SetCount(b, b - 19);  // 1..10 (fits 4 bits)
  // Extract starting exactly at the window start.
  const uint64_t cfg = a.ExtractConfig(20, 4);
  EXPECT_EQ(cfg & 0xf, 1u);
  EXPECT_EQ((cfg >> 4) & 0xf, 2u);
  EXPECT_EQ((cfg >> 8) & 0xf, 3u);
  EXPECT_EQ((cfg >> 12) & 0xf, 4u);
  EXPECT_EQ(cfg >> 16, 0u);
}

TEST(AdapterTest, ExtractConfigWithPositiveOffset) {
  Adapter a;
  a.Init(20, 10, 4);
  for (int b = 20; b < 30; ++b) a.SetCount(b, b - 19);
  const uint64_t cfg = a.ExtractConfig(25, 3);
  EXPECT_EQ(cfg & 0xf, 6u);
  EXPECT_EQ((cfg >> 4) & 0xf, 7u);
  EXPECT_EQ((cfg >> 8) & 0xf, 8u);
}

TEST(AdapterTest, ExtractConfigBelowWindowZeroFills) {
  Adapter a;
  a.Init(20, 10, 4);
  a.SetCount(20, 5);
  a.SetCount(21, 9);
  // Slots for buckets 18, 19 must read zero; 20, 21 follow.
  const uint64_t cfg = a.ExtractConfig(18, 4);
  EXPECT_EQ(cfg & 0xf, 0u);
  EXPECT_EQ((cfg >> 4) & 0xf, 0u);
  EXPECT_EQ((cfg >> 8) & 0xf, 5u);
  EXPECT_EQ((cfg >> 12) & 0xf, 9u);
}

TEST(AdapterTest, ExtractConfigFarOutsideWindow) {
  Adapter a;
  a.Init(20, 10, 4);
  a.SetCount(25, 3);
  EXPECT_EQ(a.ExtractConfig(100, 8), 0u);
  EXPECT_EQ(a.ExtractConfig(-40, 8), 0u);
  EXPECT_EQ(a.ExtractConfig(0, 0), 0u);
}

TEST(AdapterTest, ExtractConfigTruncatesBeyondWindow) {
  Adapter a;
  a.Init(0, 4, 4);
  for (int b = 0; b < 4; ++b) a.SetCount(b, b + 1);
  const uint64_t cfg = a.ExtractConfig(2, 6);
  EXPECT_EQ(cfg & 0xf, 3u);
  EXPECT_EQ((cfg >> 4) & 0xf, 4u);
  EXPECT_EQ(cfg >> 8, 0u);  // beyond the window
}

TEST(AdapterTest, FullWordWindow) {
  Adapter a;
  a.Init(0, 16, 4);  // exactly 64 bits
  for (int b = 0; b < 16; ++b) a.SetCount(b, 15 - b);
  for (int b = 0; b < 16; ++b) EXPECT_EQ(a.GetCount(b), 15 - b);
  const uint64_t cfg = a.ExtractConfig(0, 16);
  for (int b = 0; b < 16; ++b) {
    EXPECT_EQ((cfg >> (4 * b)) & 0xf, static_cast<uint64_t>(15 - b));
  }
}

}  // namespace
}  // namespace dpss
