// The kill-point recovery harness (the PR's proof of correctness for the
// persistence layer), plus targeted recovery-behaviour tests and the
// post-recovery distribution gate.
//
// Harness design: a deterministic mutation script runs against a
// DurableSampler whose filesystem is a FaultInjectingEnv (tests/test_util.h)
// wrapping a MemEnv. The env kills the "process" at mutating-call index k —
// for every k, in both drop and torn-write modes. After each injected
// crash the harness "reboots" (RecoveryManager::Open on the raw MemEnv,
// i.e. the exact bytes the crash left behind) and requires:
//
//   1. recovery SUCCEEDS — a pure crash never leaves an unrecoverable
//      directory — and never aborts (the CI sanitizers job runs this file
//      under ASan/UBSan, so OOB reads crash loudly);
//   2. the recovered state equals the shadow model after some *prefix* of
//      the applied mutation units, no shorter than the durability floor
//      (every unit acked under the sync policy before the crash);
//   3. the recovered sampler is alive: invariants hold and new mutations
//      apply.

#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sampler.h"
#include "persist/env.h"
#include "persist/recovery.h"
#include "persist/snapshot.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace dpss {
namespace {

using persist::DurableOptions;
using persist::DurableSampler;
using persist::MemEnv;
using persist::RecoveryManager;
using testing_util::ExpectFrequencyGate;
using testing_util::FaultInjectingEnv;

constexpr char kDir[] = "state";

DurableOptions MakeOptions(persist::Env* env, const std::string& backend,
                           uint32_t sync_every, bool incremental = false) {
  DurableOptions opts;
  opts.backend = backend;
  opts.spec.seed = 1234;
  opts.wal_sync_every = sync_every;
  opts.incremental_checkpoints = incremental;
  opts.env = env;
  return opts;
}

// --- Shadow model ---------------------------------------------------------

// One op of one atomic unit. `id_known` is false only for a single Insert
// whose call crashed after the in-memory apply (the id never reached the
// caller); its weight is still known.
struct ShadowOp {
  Op::Kind kind = Op::Kind::kInsert;
  ItemId id = 0;
  uint64_t weight = 0;
  bool id_known = true;
};
using ShadowUnit = std::vector<ShadowOp>;

struct ScriptResult {
  std::vector<ShadowUnit> applied;  // units applied in memory, in order
  size_t floor = 0;  // units guaranteed durable under the sync policy
  bool crashed = false;
};

// Does `s` equal the shadow state after the first `p` units?
bool MatchesPrefix(const Sampler& s, const std::vector<ShadowUnit>& units,
                   size_t p) {
  std::map<ItemId, uint64_t> expect;
  std::vector<uint64_t> unknown_ids;  // weights of unknown-id inserts
  for (size_t u = 0; u < p; ++u) {
    for (const ShadowOp& op : units[u]) {
      switch (op.kind) {
        case Op::Kind::kInsert:
          if (op.id_known) {
            expect[op.id] = op.weight;
          } else {
            unknown_ids.push_back(op.weight);
          }
          break;
        case Op::Kind::kErase:
          expect.erase(op.id);
          break;
        case Op::Kind::kSetWeight:
          expect[op.id] = op.weight;
          break;
      }
    }
  }
  if (s.size() != expect.size() + unknown_ids.size()) return false;
  unsigned __int128 total = 0;
  for (const auto& [id, w] : expect) {
    if (!s.Contains(id)) return false;
    const StatusOr<Weight> got = s.GetWeight(id);
    if (!got.ok() || !(*got == Weight::FromU64(w))) return false;
    total += w;
  }
  for (const uint64_t w : unknown_ids) total += w;
  return s.TotalWeight() == BigUInt::FromU128(total);
}

// --- The deterministic script ---------------------------------------------

// Drives inserts, erases, set-weights, an InsertBatch, ApplyBatches and two
// explicit checkpoints against a freshly opened durable sampler, stopping
// at the first error (the injected crash). Identical inputs on every run:
// behaviour diverges from the fault-free run only at the crash point.
ScriptResult RunScript(persist::Env* env, const std::string& backend,
                       uint32_t sync_every, bool incremental = false) {
  ScriptResult result;
  auto opened = RecoveryManager::Open(kDir, MakeOptions(env, backend,
                                                        sync_every,
                                                        incremental));
  if (!opened.ok()) {
    result.crashed = true;
    return result;
  }
  DurableSampler& d = **opened;

  // Mirrors the harness's own sync policy to maintain the durability
  // floor; a successful checkpoint also makes everything durable.
  uint64_t since_sync = 0;
  const auto on_acked = [&] {
    if (sync_every != 0 && ++since_sync >= sync_every) {
      since_sync = 0;
      result.floor = result.applied.size();
    }
  };

  RandomEngine rng(77);
  std::vector<ItemId> live;
  for (int i = 0; i < 34; ++i) {
    if (i == 10 || i == 22) {
      if (d.Checkpoint().ok()) {
        since_sync = 0;
        result.floor = result.applied.size();
      }
      continue;
    }
    if (i == 15) {
      // One InsertBatch: logged as a single atomic record.
      const std::vector<uint64_t> weights = {7, 21, 63};
      std::vector<ItemId> ids;
      const Status st = d.InsertBatch(weights, &ids);
      if (!ids.empty()) {
        ShadowUnit unit;
        for (size_t j = 0; j < ids.size(); ++j) {
          unit.push_back({Op::Kind::kInsert, ids[j], weights[j], true});
          live.push_back(ids[j]);
        }
        result.applied.push_back(unit);
      }
      if (!st.ok()) {
        result.crashed = true;
        return result;
      }
      on_acked();
      continue;
    }
    if (i % 11 == 9 && live.size() >= 2) {
      // One mixed ApplyBatch: also a single atomic record.
      const ItemId victim = live[rng.NextBelow(live.size())];
      ItemId target = victim;
      while (target == victim) target = live[rng.NextBelow(live.size())];
      const std::vector<Op> ops = {
          Op::Insert(uint64_t{11 + static_cast<uint64_t>(i)}),
          Op::SetWeight(target, 5),
          Op::Erase(victim),
      };
      std::vector<ItemId> ids;
      size_t applied = 0;
      const Status st = d.ApplyBatch(ops, &ids, &applied);
      if (applied > 0) {
        ShadowUnit unit;
        size_t insert_cursor = 0;
        for (size_t j = 0; j < applied; ++j) {
          ShadowOp op;
          op.kind = ops[j].kind;
          op.id = ops[j].id;
          op.weight = ops[j].weight.mult;
          if (ops[j].kind == Op::Kind::kInsert) {
            op.id = ids[insert_cursor++];
            live.push_back(op.id);
          }
          unit.push_back(op);
        }
        result.applied.push_back(unit);
        if (applied >= 3) {
          for (auto it = live.begin(); it != live.end(); ++it) {
            if (*it == victim) {
              live.erase(it);
              break;
            }
          }
        }
      }
      if (!st.ok()) {
        result.crashed = true;
        return result;
      }
      on_acked();
      continue;
    }
    if (i % 7 == 3 && !live.empty()) {
      const size_t pick = rng.NextBelow(live.size());
      const ItemId id = live[pick];
      const Status st = d.Erase(id);
      // Erase validated against a live id: an error means the crash hit
      // after the in-memory apply.
      result.applied.push_back({{Op::Kind::kErase, id, 0, true}});
      live[pick] = live.back();
      live.pop_back();
      if (!st.ok()) {
        result.crashed = true;
        return result;
      }
      on_acked();
      continue;
    }
    if (i % 7 == 5 && !live.empty()) {
      const ItemId id = live[rng.NextBelow(live.size())];
      const uint64_t w = 1 + rng.NextBelow(1 << 10);
      const Status st = d.SetWeight(id, w);
      result.applied.push_back({{Op::Kind::kSetWeight, id, w, true}});
      if (!st.ok()) {
        result.crashed = true;
        return result;
      }
      on_acked();
      continue;
    }
    const uint64_t w = 1 + rng.NextBelow(1 << 10);
    const StatusOr<ItemId> id = d.Insert(w);
    if (id.ok()) {
      result.applied.push_back({{Op::Kind::kInsert, *id, w, true}});
      live.push_back(*id);
      on_acked();
    } else {
      // Applied in memory, id unknown to the caller; the crash decides
      // whether it reached the log.
      result.applied.push_back({{Op::Kind::kInsert, 0, w, false}});
      result.crashed = true;
      return result;
    }
  }
  return result;
}

// --- The harness ----------------------------------------------------------

const char* ModeName(FaultInjectingEnv::Mode mode) {
  switch (mode) {
    case FaultInjectingEnv::Mode::kDrop: return "drop";
    case FaultInjectingEnv::Mode::kPartial: return "partial";
    case FaultInjectingEnv::Mode::kTornPage: return "torn-page";
  }
  return "?";
}

void KillPointHarness(const std::string& backend, uint32_t sync_every,
                      bool incremental = false) {
  // Fault-free probe: counts the script's mutating Env calls — the set of
  // kill points — and records the complete shadow for the no-crash case.
  uint64_t total_ticks = 0;
  {
    MemEnv mem;
    FaultInjectingEnv probe(&mem, ~uint64_t{0},
                            FaultInjectingEnv::Mode::kDrop);
    const ScriptResult full = RunScript(&probe, backend, sync_every,
                                        incremental);
    ASSERT_FALSE(full.crashed);
    total_ticks = probe.mutating_calls();
    ASSERT_GT(total_ticks, 40u) << "script too small to be interesting";
  }

  for (const auto mode : {FaultInjectingEnv::Mode::kDrop,
                          FaultInjectingEnv::Mode::kPartial,
                          FaultInjectingEnv::Mode::kTornPage}) {
    for (uint64_t k = 0; k < total_ticks; ++k) {
      MemEnv mem;
      ScriptResult run;
      {
        FaultInjectingEnv fault(&mem, k, mode);
        run = RunScript(&fault, backend, sync_every, incremental);
      }
      // "Reboot": recover from exactly the bytes the crash left behind.
      auto reopened = RecoveryManager::Open(
          kDir, MakeOptions(&mem, backend, sync_every, incremental));
      ASSERT_TRUE(reopened.ok())
          << backend << " crash point " << k << " mode " << ModeName(mode)
          << ": recovery failed: " << reopened.status().message();
      EXPECT_TRUE((*reopened)->CheckInvariants().ok());

      // Prefix consistency: some prefix no shorter than the durability
      // floor must match exactly.
      bool matched = false;
      size_t matched_p = 0;
      for (size_t p = run.applied.size() + 1; p-- > 0;) {
        if (MatchesPrefix(**reopened, run.applied, p)) {
          matched = true;
          matched_p = p;
          break;
        }
      }
      EXPECT_TRUE(matched)
          << backend << " crash point " << k << ": recovered state matches "
          << "no prefix of the " << run.applied.size() << " applied units";
      if (matched) {
        EXPECT_GE(matched_p, run.floor)
            << backend << " crash point " << k
            << ": recovery lost units that were acked as durable";
      }

      // Liveness: the recovered sampler keeps working.
      EXPECT_TRUE((*reopened)->Insert(5).ok());
      std::vector<ItemId> out;
      EXPECT_TRUE((*reopened)->SampleInto({1, 1}, {0, 1}, &out).ok());
    }
  }
}

// "halt" has no arena images, so these two pin the classic v1 path.
TEST(RecoveryKillPoints, HaltSyncEveryOp) { KillPointHarness("halt", 1); }

TEST(RecoveryKillPoints, HaltGroupCommit) { KillPointHarness("halt", 4); }

// "rebuild" and everything below run the arena (v2) snapshot path:
// rotation and checkpoints go through WriteFileViaMap, so every MapFile
// and Msync is a kill point and every torn-page crash lands inside a
// mapped writeback.
TEST(RecoveryKillPoints, RebuildBaseline) { KillPointHarness("rebuild", 1); }

TEST(RecoveryKillPoints, ShardedHalt) {
  KillPointHarness("sharded4:halt", 1);
}

// Incremental checkpoints: the script's two Checkpoint() calls write
// delta files, so the kill-point matrix covers every crash index inside
// delta rotation and every reboot walks a snapshot+delta chain.
TEST(RecoveryKillPoints, NaiveIncrementalDeltaChain) {
  KillPointHarness("naive", 1, /*incremental=*/true);
}

TEST(RecoveryKillPoints, ShardedNaiveIncremental) {
  KillPointHarness("sharded4:naive", 4, /*incremental=*/true);
}

// --- Targeted recovery behaviour ------------------------------------------

TEST(RecoveryTest, CleanRestartPreservesEverything) {
  MemEnv mem;
  std::vector<ItemId> ids;
  {
    auto d = RecoveryManager::Open(kDir, MakeOptions(&mem, "halt", 1));
    ASSERT_TRUE(d.ok());
    EXPECT_TRUE((*d)->recovery_stats().fresh_start);
    for (uint64_t w : {10, 20, 30, 40}) ids.push_back(*(*d)->Insert(w));
    ASSERT_TRUE((*d)->Erase(ids[1]).ok());
    ASSERT_TRUE((*d)->SetWeight(ids[2], 35).ok());
  }
  auto d = RecoveryManager::Open(kDir, MakeOptions(&mem, "halt", 1));
  ASSERT_TRUE(d.ok());
  const persist::RecoveryStats& stats = (*d)->recovery_stats();
  EXPECT_FALSE(stats.fresh_start);
  EXPECT_EQ(stats.records_replayed, 6u);  // 4 inserts + erase + set
  EXPECT_EQ(stats.wal_bytes_truncated, 0u);
  EXPECT_EQ((*d)->size(), 3u);
  EXPECT_FALSE((*d)->Contains(ids[1]));
  EXPECT_EQ((*d)->GetWeight(ids[2])->mult, 35u);
  EXPECT_EQ((*d)->TotalWeight(), BigUInt(uint64_t{85}));
}

TEST(RecoveryTest, DirectoryBackendStickiness) {
  // The directory's snapshot header decides the backend; a later Open with
  // a different requested backend must not silently switch types.
  MemEnv mem;
  {
    auto d = RecoveryManager::Open(kDir, MakeOptions(&mem, "naive", 1));
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE((*d)->Insert(9).ok());
  }
  auto d = RecoveryManager::Open(kDir, MakeOptions(&mem, "halt", 1));
  ASSERT_TRUE(d.ok());
  EXPECT_STREQ((*d)->name(), "durable:naive");
  EXPECT_EQ((*d)->size(), 1u);
}

TEST(RecoveryTest, GarbageWalTailIsTruncated) {
  MemEnv mem;
  {
    auto d = RecoveryManager::Open(kDir, MakeOptions(&mem, "halt", 1));
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE((*d)->Insert(5).ok());
    ASSERT_TRUE((*d)->Insert(6).ok());
  }
  // Simulate a torn append: garbage bytes at the end of the live WAL
  // (the first Open rotated the fresh directory to epoch 1).
  const std::string wal_path = std::string(kDir) + "/wal-1";
  ASSERT_TRUE(mem.FileExists(wal_path));
  {
    auto f = mem.NewWritableFile(wal_path, /*truncate=*/false);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("\x13garbage-torn-tail").ok());
  }
  auto d = RecoveryManager::Open(kDir, MakeOptions(&mem, "halt", 1));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->recovery_stats().records_replayed, 2u);
  EXPECT_GT((*d)->recovery_stats().wal_bytes_truncated, 0u);
  EXPECT_EQ((*d)->size(), 2u);
}

TEST(RecoveryTest, AutoCheckpointBoundsTheWal) {
  MemEnv mem;
  DurableOptions opts = MakeOptions(&mem, "halt", 1);
  opts.checkpoint_wal_bytes = 512;
  auto d = RecoveryManager::Open(kDir, opts);
  ASSERT_TRUE(d.ok());
  const uint64_t epoch_before = (*d)->epoch();
  for (int i = 0; i < 100; ++i) ASSERT_TRUE((*d)->Insert(1 + i).ok());
  EXPECT_GT((*d)->epoch(), epoch_before) << "no auto-checkpoint fired";
  EXPECT_TRUE((*d)->last_checkpoint_status().ok());
  EXPECT_LE((*d)->wal_bytes(), uint64_t{512} + 128);
  EXPECT_EQ((*d)->size(), 100u);
  // And the rotated directory still recovers cleanly.
  d = RecoveryManager::Open(kDir, opts);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->size(), 100u);
}

TEST(RecoveryTest, RestoreRotatesImmediately) {
  MemEnv mem;
  SamplerSpec spec;
  spec.seed = 1234;
  auto donor = MakeSampler("halt", spec);
  const std::vector<uint64_t> donor_weights = {1, 2, 3};
  ASSERT_TRUE(donor->InsertBatch(donor_weights, nullptr).ok());
  std::string bytes;
  ASSERT_TRUE(donor->Serialize(&bytes).ok());

  auto d = RecoveryManager::Open(kDir, MakeOptions(&mem, "halt", 1));
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE((*d)->Insert(999).ok());
  const uint64_t epoch_before = (*d)->epoch();
  ASSERT_TRUE((*d)->Restore(bytes).ok());
  EXPECT_GT((*d)->epoch(), epoch_before);
  EXPECT_EQ((*d)->size(), 3u);
  // A restart sees the restored state, not the pre-restore item.
  auto reopened = RecoveryManager::Open(kDir, MakeOptions(&mem, "halt", 1));
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), 3u);
  EXPECT_EQ((*reopened)->TotalWeight(), BigUInt(uint64_t{6}));
}

// --- Arena (v2) format and incremental checkpoints ------------------------

TEST(RecoveryArenaTest, IncrementalCheckpointsBuildADeltaChain) {
  MemEnv mem;
  const DurableOptions opts =
      MakeOptions(&mem, "naive", 1, /*incremental=*/true);
  std::vector<ItemId> ids;
  {
    auto d = RecoveryManager::Open(kDir, opts);
    ASSERT_TRUE(d.ok());
    // The fresh-directory rotation is necessarily full: snapshot-1.
    ASSERT_TRUE(mem.FileExists("state/snapshot-1"));
    for (uint64_t w : {10, 20, 30, 40}) ids.push_back(*(*d)->Insert(w));
    ASSERT_TRUE((*d)->Checkpoint().ok());
    ASSERT_TRUE((*d)->SetWeight(ids[2], 35).ok());
    ASSERT_TRUE((*d)->Erase(ids[1]).ok());
    ASSERT_TRUE((*d)->Checkpoint().ok());
  }
  // Both explicit checkpoints extended the chain instead of rewriting it:
  // the anchor snapshot survives and the churn lives in delta files.
  EXPECT_TRUE(mem.FileExists("state/snapshot-1"));
  EXPECT_TRUE(mem.FileExists("state/delta-2"));
  EXPECT_TRUE(mem.FileExists("state/delta-3"));
  EXPECT_FALSE(mem.FileExists("state/snapshot-2"));
  EXPECT_FALSE(mem.FileExists("state/snapshot-3"));

  auto d = RecoveryManager::Open(kDir, opts);
  ASSERT_TRUE(d.ok());
  const persist::RecoveryStats& stats = (*d)->recovery_stats();
  EXPECT_EQ(stats.snapshot_epoch, 3u);
  EXPECT_EQ(stats.deltas_applied, 2u);
  EXPECT_EQ(stats.snapshot_version, persist::kContainerVersionArena);
  EXPECT_EQ((*d)->size(), 3u);
  EXPECT_FALSE((*d)->Contains(ids[1]));
  EXPECT_EQ((*d)->GetWeight(ids[2])->mult, 35u);
  EXPECT_EQ((*d)->TotalWeight(), BigUInt(uint64_t{85}));
  EXPECT_TRUE((*d)->CheckInvariants().ok());
  // Open itself rotated incrementally — the recovered chain grew by one
  // delta rather than being rewritten as a full snapshot.
  EXPECT_TRUE(mem.FileExists("state/snapshot-1"));
  EXPECT_TRUE(mem.FileExists("state/delta-4"));
}

TEST(RecoveryArenaTest, DeltaChainCapForcesAFullSnapshot) {
  MemEnv mem;
  DurableOptions opts = MakeOptions(&mem, "naive", 1, /*incremental=*/true);
  opts.max_delta_chain = 2;
  auto d = RecoveryManager::Open(kDir, opts);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE((*d)->Insert(7).ok());
  ASSERT_TRUE((*d)->Checkpoint().ok());  // epoch 2: delta (chain length 1)
  ASSERT_TRUE(mem.FileExists("state/delta-2"));
  ASSERT_TRUE((*d)->Insert(8).ok());
  ASSERT_TRUE((*d)->Checkpoint().ok());  // epoch 3: cap reached -> full
  EXPECT_TRUE(mem.FileExists("state/snapshot-3"));
  // The full snapshot retired the entire old chain.
  EXPECT_FALSE(mem.FileExists("state/snapshot-1"));
  EXPECT_FALSE(mem.FileExists("state/delta-2"));
  EXPECT_FALSE(mem.FileExists("state/delta-3"));

  auto reopened = RecoveryManager::Open(kDir, opts);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->recovery_stats().deltas_applied, 0u);
  EXPECT_EQ((*reopened)->size(), 2u);
  EXPECT_EQ((*reopened)->TotalWeight(), BigUInt(uint64_t{15}));
}

TEST(RecoveryArenaTest, ClassicFormatOptionPinsV1) {
  MemEnv mem;
  DurableOptions opts = MakeOptions(&mem, "naive", 1, /*incremental=*/true);
  opts.snapshot_format = persist::SnapshotFormat::kClassic;
  {
    auto d = RecoveryManager::Open(kDir, opts);
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE((*d)->Insert(9).ok());
    // Incremental checkpoints need the arena format; with kClassic the
    // call silently stays full and writes no delta.
    ASSERT_TRUE((*d)->Checkpoint().ok());
    EXPECT_FALSE(mem.FileExists("state/delta-2"));
    EXPECT_TRUE(mem.FileExists("state/snapshot-2"));
  }
  auto d = RecoveryManager::Open(kDir, opts);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->recovery_stats().snapshot_version, 1u);
  EXPECT_EQ((*d)->size(), 1u);
}

TEST(RecoveryArenaTest, V1DirectoryUpgradesToV2OnReopen) {
  // Back-compat: a directory written entirely in the classic format loads
  // under the default options, and the rotation re-publishes it as v2.
  MemEnv mem;
  {
    DurableOptions classic = MakeOptions(&mem, "naive", 1);
    classic.snapshot_format = persist::SnapshotFormat::kClassic;
    auto d = RecoveryManager::Open(kDir, classic);
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE((*d)->Insert(11).ok());
    ASSERT_TRUE((*d)->Insert(22).ok());
  }
  {
    auto d = RecoveryManager::Open(kDir, MakeOptions(&mem, "naive", 1));
    ASSERT_TRUE(d.ok());
    EXPECT_EQ((*d)->recovery_stats().snapshot_version, 1u);
    EXPECT_EQ((*d)->size(), 2u);
  }
  // The second Open's rotation wrote an arena snapshot; the third load
  // maps it.
  auto d = RecoveryManager::Open(kDir, MakeOptions(&mem, "naive", 1));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->recovery_stats().snapshot_version,
            persist::kContainerVersionArena);
  EXPECT_EQ((*d)->size(), 2u);
  EXPECT_EQ((*d)->TotalWeight(), BigUInt(uint64_t{33}));
}

TEST(RecoveryArenaTest, ArenaFormatForcedOnClassicBackendIsRejected) {
  MemEnv mem;
  DurableOptions opts = MakeOptions(&mem, "halt", 1);
  opts.snapshot_format = persist::SnapshotFormat::kArena;
  auto d = RecoveryManager::Open(kDir, opts);
  EXPECT_EQ(d.status().code(), StatusCode::kUnsupported);
}

TEST(RecoveryArenaTest, HeapFallbackMatchesMmapPath) {
  // DPSS_PERSIST_FORCE_MMAP=0 swaps the CoW mapping for a heap read; the
  // recovered state must be identical either way.
  MemEnv mem;
  std::vector<ItemId> ids;
  {
    auto d = RecoveryManager::Open(kDir, MakeOptions(&mem, "naive", 1));
    ASSERT_TRUE(d.ok());
    for (uint64_t w : {3, 5, 8}) ids.push_back(*(*d)->Insert(w));
    ASSERT_TRUE((*d)->Checkpoint().ok());
  }
  const char* prior = ::getenv("DPSS_PERSIST_FORCE_MMAP");
  const std::string saved = prior != nullptr ? prior : "";
  ::setenv("DPSS_PERSIST_FORCE_MMAP", "0", 1);
  auto d = RecoveryManager::Open(kDir, MakeOptions(&mem, "naive", 1));
  if (prior != nullptr) {
    ::setenv("DPSS_PERSIST_FORCE_MMAP", saved.c_str(), 1);
  } else {
    ::unsetenv("DPSS_PERSIST_FORCE_MMAP");
  }
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->recovery_stats().snapshot_version,
            persist::kContainerVersionArena);
  EXPECT_EQ((*d)->size(), 3u);
  for (const ItemId id : ids) EXPECT_TRUE((*d)->Contains(id));
  EXPECT_EQ((*d)->TotalWeight(), BigUInt(uint64_t{16}));
  EXPECT_TRUE((*d)->CheckInvariants().ok());
  EXPECT_TRUE((*d)->Insert(4).ok());
}

TEST(RecoveryArenaTest, CorruptDeltaFallsBackToTheAnchor) {
  // A delta whose page bytes rot must not poison recovery: the loader
  // rejects that tip and falls back to an older consistent epoch.
  MemEnv mem;
  const DurableOptions opts =
      MakeOptions(&mem, "naive", 1, /*incremental=*/true);
  {
    auto d = RecoveryManager::Open(kDir, opts);
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE((*d)->Insert(100).ok());
    ASSERT_TRUE((*d)->Checkpoint().ok());  // delta-2
  }
  ASSERT_TRUE(mem.FileExists("state/delta-2"));
  // Flip one byte in the delta's aligned page region (past the metadata
  // frame, so only the per-page CRC can catch it).
  std::string bytes;
  ASSERT_TRUE(mem.ReadFileToString("state/delta-2", &bytes).ok());
  ASSERT_GT(bytes.size(), persist::kArenaFileAlign);
  bytes[bytes.size() - persist::kArenaFileAlign / 2] ^= 0x40;
  {
    auto f = mem.NewWritableFile("state/delta-2", /*truncate=*/true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(bytes).ok());
  }
  auto d = RecoveryManager::Open(kDir, opts);
  ASSERT_TRUE(d.ok()) << d.status().message();
  EXPECT_GT((*d)->recovery_stats().snapshots_skipped, 0u);
  // The anchor (epoch 1, pre-insert) is the newest consistent state. The
  // insert was durable only in the rotted delta (its WAL was retired by
  // the checkpoint), so media corruption — unlike any crash — may lose it;
  // what recovery guarantees is a consistent state and a loud skip count.
  EXPECT_EQ((*d)->recovery_stats().snapshot_epoch, 1u);
  EXPECT_EQ((*d)->size(), 0u);
  EXPECT_TRUE((*d)->CheckInvariants().ok());
  EXPECT_TRUE((*d)->Insert(1).ok());
}

// --- Post-recovery distribution gate --------------------------------------
//
// The satellite requirement: a snapshot → crash → replay state must sample
// chi-square-identically to a never-crashed sampler. Both the recovered
// sampler and a control built directly in its (id, weight) state face the
// same exact-marginal frequency gate from tests/statistical.h.

TEST(RecoveryDistribution, RecoveredStateSamplesExactly) {
  const auto script = [](persist::Env* env) {
    auto d = RecoveryManager::Open(kDir, MakeOptions(env, "halt", 1));
    if (!d.ok()) return;
    std::vector<ItemId> ids;
    RandomEngine wrng(42);
    for (int i = 0; i < 48; ++i) {
      const uint64_t w = (uint64_t{1} << 12) + wrng.NextBelow(1 << 13);
      const auto id = (*d)->Insert(w);
      if (!id.ok()) return;
      ids.push_back(*id);
    }
    if (!(*d)->Checkpoint().ok()) return;
    for (int i = 0; i < 120; ++i) {
      const uint64_t w = (uint64_t{1} << 12) + wrng.NextBelow(1 << 13);
      if (!(*d)->SetWeight(ids[wrng.NextBelow(ids.size())], w).ok()) return;
    }
  };

  // Probe for the tick count, then crash three-quarters in — after the
  // checkpoint, in the middle of the post-snapshot update stream, so the
  // recovered state is genuinely snapshot + replayed WAL tail.
  uint64_t total_ticks = 0;
  {
    MemEnv mem;
    FaultInjectingEnv probe(&mem, ~uint64_t{0},
                            FaultInjectingEnv::Mode::kDrop);
    script(&probe);
    total_ticks = probe.mutating_calls();
  }
  MemEnv mem;
  {
    FaultInjectingEnv fault(&mem, total_ticks * 3 / 4,
                            FaultInjectingEnv::Mode::kPartial);
    script(&fault);
  }
  auto recovered = RecoveryManager::Open(kDir, MakeOptions(&mem, "halt", 1));
  ASSERT_TRUE(recovered.ok());
  ASSERT_GT((*recovered)->recovery_stats().records_replayed, 0u)
      << "test design: the crash point must land after WAL records";

  // The control: the same (id, weight) state built without ever crashing.
  std::vector<ItemRecord> items;
  ASSERT_TRUE((*recovered)->DumpItems(&items).ok());
  ASSERT_EQ(items.size(), 48u);
  SamplerSpec spec;
  spec.seed = 777;
  auto control = MakeSampler("halt", spec);
  for (const ItemRecord& rec : items) {
    ASSERT_TRUE(control->InsertWeight(rec.weight).ok());
  }

  // Exact marginals at (α, β) = (1/8, 0): p_x = 8·w_x / Σw, uncapped by
  // the narrow weight band.
  double total = 0;
  for (const ItemRecord& rec : items) total += rec.weight.ToDouble();
  std::vector<double> probs(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    probs[i] = 8.0 * items[i].weight.ToDouble() / total;
    ASSERT_LT(probs[i], 1.0);
  }

  const uint64_t trials = 30000;
  const Rational64 alpha{1, 8}, beta{0, 1};
  std::map<ItemId, size_t> index;
  for (size_t i = 0; i < items.size(); ++i) index[items[i].id] = i;

  std::vector<uint64_t> recovered_hits(items.size(), 0);
  RandomEngine rng_a(601);
  std::vector<ItemId> buf;
  for (uint64_t t = 0; t < trials; ++t) {
    ASSERT_TRUE((*recovered)->SampleInto(alpha, beta, rng_a, &buf).ok());
    for (const ItemId id : buf) {
      auto it = index.find(id);
      ASSERT_NE(it, index.end()) << "sampled an unknown id";
      ++recovered_hits[it->second];
    }
  }
  ExpectFrequencyGate(recovered_hits, trials, probs, 4.75,
                      "post-recovery sampler");

  // The never-crashed control faces the identical gate: equal state =>
  // equal (exact) distribution, so both pass or the backend is wrong.
  std::vector<uint64_t> control_hits(items.size(), 0);
  RandomEngine rng_b(602);
  for (uint64_t t = 0; t < trials; ++t) {
    ASSERT_TRUE(control->SampleInto(alpha, beta, rng_b, &buf).ok());
    for (const ItemId id : buf) {
      // Control ids are fresh but insertion order matches `items`.
      ASSERT_LT(SlotIndexOf(id), items.size());
      ++control_hits[SlotIndexOf(id)];
    }
  }
  ExpectFrequencyGate(control_hits, trials, probs, 4.75,
                      "never-crashed control");
}

}  // namespace
}  // namespace dpss
