// The statistical acceptance gates shared by every suite that checks
// sampled frequencies: per-item Bernoulli z-scores and Pearson chi-square
// statistics with one documented threshold rule.
//
// Thresholds
// ----------
// All gates use fixed seeds, so a given build either passes or fails
// deterministically; the probabilistic statements below describe the
// chance that a *correct* implementation draws an unlucky seed when a
// constant changes.
//
//   * z-scores: |z| <= 4.5 per item (P ~ 7e-6 two-sided per gate). Suites
//     that aggregate many gates (per-item loops over large item sets, or
//     parameterized suites over every backend) use 4.75 (P ~ 2e-6) so the
//     union bound stays comfortably below 1e-2 across the whole run.
//   * chi-square: statistic <= dof + 4.5*sqrt(2*dof) + 10 (mean + 4.5
//     sigma + slack for the normal-approximation error at small dof).
//     Cells with expected count < 5 are pooled into their neighbour
//     (ChiSquare) or asserted away by the caller (kMinExpectedCell).
//
// Sensitivity: at the trial counts used by the suites (>= 3e4), a
// per-item bias of ~2^-10 relative shifts z past any of these bounds with
// overwhelming probability, while the paper's exact-arithmetic guarantee
// makes the true bias 0 — these gates separate "exact" from "one ulp off",
// not "roughly right" from "wrong".
//
// The building blocks (BernoulliZScore / ChiSquare / ChiSquareGate) live
// here; ExpectFrequencyGate is the composed per-item-z + chi-square
// acceptance check that sampler_contract_test, churn_stress_test,
// fastpath_equivalence_test and recovery_test all drive.

#ifndef DPSS_TESTS_STATISTICAL_H_
#define DPSS_TESTS_STATISTICAL_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dpss {
namespace testing_util {

// Expected counts below this make the chi-square normal approximation
// unreliable; ExpectFrequencyGate asserts every uncapped cell clears it
// (pick trial counts accordingly when designing a test).
inline constexpr double kMinExpectedCell = 5.0;

// z-score of observing `hits` successes in `trials` Bernoulli(p) trials.
inline double BernoulliZScore(uint64_t hits, uint64_t trials, double p) {
  const double mean = static_cast<double>(trials) * p;
  const double var = static_cast<double>(trials) * p * (1.0 - p);
  if (var <= 0) return hits == static_cast<uint64_t>(mean) ? 0.0 : 1e9;
  return (static_cast<double>(hits) - mean) / std::sqrt(var);
}

// Pearson chi-square statistic for observed counts vs expected
// probabilities. Buckets with expected count < kMinExpectedCell are pooled
// into their neighbour.
inline double ChiSquare(const std::vector<uint64_t>& observed,
                        const std::vector<double>& expected_prob,
                        uint64_t trials, int* dof_out) {
  double chi = 0;
  int dof = -1;
  double pooled_exp = 0;
  double pooled_obs = 0;
  for (size_t i = 0; i < observed.size(); ++i) {
    pooled_exp += expected_prob[i] * static_cast<double>(trials);
    pooled_obs += static_cast<double>(observed[i]);
    if (pooled_exp >= kMinExpectedCell) {
      const double d = pooled_obs - pooled_exp;
      chi += d * d / pooled_exp;
      ++dof;
      pooled_exp = 0;
      pooled_obs = 0;
    }
  }
  if (pooled_exp > 0) {
    const double d = pooled_obs - pooled_exp;
    chi += d * d / (pooled_exp > 1e-12 ? pooled_exp : 1e-12);
    ++dof;
  }
  if (dof_out != nullptr) *dof_out = dof < 1 ? 1 : dof;
  return chi;
}

// Acceptance threshold for a chi-square statistic with `dof` degrees of
// freedom: mean + 4.5 sigma + slack (chi-square has mean k, variance 2k).
inline double ChiSquareGate(int dof) {
  return dof + 4.5 * std::sqrt(2.0 * dof) + 10.0;
}

// The composed frequency gate: given per-item hit counts over `trials`
// independent queries and the items' exact inclusion probabilities,
//   * items with p >= 1 (capped at probability 1 — decided in exact
//     arithmetic by the samplers) must be hit on every single trial;
//   * every uncapped item's |z| must clear `z_bound`;
//   * the pooled chi-square over the uncapped items must clear
//     ChiSquareGate.
// `context` labels failures (backend name, test phase).
inline void ExpectFrequencyGate(const std::vector<uint64_t>& hits,
                                uint64_t trials,
                                const std::vector<double>& probs,
                                double z_bound, const std::string& context) {
  ASSERT_EQ(hits.size(), probs.size()) << context;
  std::vector<uint64_t> uncapped_hits;
  std::vector<double> uncapped_probs;
  for (size_t i = 0; i < hits.size(); ++i) {
    if (probs[i] >= 1.0) {
      EXPECT_EQ(hits[i], trials) << context << ": capped item " << i;
      continue;
    }
    EXPECT_LE(std::abs(BernoulliZScore(hits[i], trials, probs[i])), z_bound)
        << context << ": item " << i << " (p=" << probs[i] << ")";
    uncapped_hits.push_back(hits[i]);
    uncapped_probs.push_back(probs[i]);
  }
  if (uncapped_hits.empty()) return;
  int dof = 0;
  const double chi = ChiSquare(uncapped_hits, uncapped_probs, trials, &dof);
  EXPECT_LE(chi, ChiSquareGate(dof)) << context;
}

}  // namespace testing_util
}  // namespace dpss

#endif  // DPSS_TESTS_STATISTICAL_H_
