// Tests for BigRational, with emphasis on Claim 4.3: exact ⌊log2⌋ and
// ⌈log2⌉ of a positive rational.

#include "bigint/rational.h"

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "util/random.h"

namespace dpss {
namespace {

using testing_util::RandomValue;

TEST(RationalTest, CompareCrossMultiplies) {
  const auto a = BigRational::FromU64(1, 3);
  const auto b = BigRational::FromU64(2, 6);
  const auto c = BigRational::FromU64(1, 2);
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(a < c);
  EXPECT_TRUE(c > b);
  EXPECT_TRUE(a <= b);
  EXPECT_TRUE(a >= b);
}

TEST(RationalTest, ArithmeticIdentities) {
  const auto a = BigRational::FromU64(3, 7);
  const auto b = BigRational::FromU64(2, 5);
  EXPECT_TRUE(BigRational::Add(a, b) == BigRational::FromU64(29, 35));
  EXPECT_TRUE(BigRational::Mul(a, b) == BigRational::FromU64(6, 35));
  EXPECT_TRUE(BigRational::Sub(a, b) == BigRational::FromU64(1, 35));
  EXPECT_TRUE(BigRational::Div(a, b) == BigRational::FromU64(15, 14));
}

TEST(RationalTest, CompareWithOne) {
  EXPECT_LT(BigRational::FromU64(2, 3).CompareWithOne(), 0);
  EXPECT_EQ(BigRational::FromU64(5, 5).CompareWithOne(), 0);
  EXPECT_GT(BigRational::FromU64(9, 5).CompareWithOne(), 0);
}

TEST(RationalTest, CompareWithPowerOfTwoBothSigns) {
  const auto x = BigRational::FromU64(3, 8);  // 0.375
  EXPECT_LT(x.CompareWithPowerOfTwo(-1), 0);  // < 1/2
  EXPECT_GT(x.CompareWithPowerOfTwo(-2), 0);  // > 1/4
  EXPECT_LT(x.CompareWithPowerOfTwo(4), 0);
  const auto big = BigRational::FromU64(48, 3);  // 16
  EXPECT_EQ(big.CompareWithPowerOfTwo(4), 0);
  EXPECT_GT(big.CompareWithPowerOfTwo(3), 0);
}

TEST(RationalTest, FloorCeilLog2ExactPowers) {
  for (int k = -40; k <= 40; ++k) {
    BigUInt num(uint64_t{1}), den(uint64_t{1});
    if (k >= 0) {
      num = BigUInt::PowerOfTwo(k);
    } else {
      den = BigUInt::PowerOfTwo(-k);
    }
    const BigRational x(num, den);
    EXPECT_EQ(x.FloorLog2(), k) << k;
    EXPECT_EQ(x.CeilLog2(), k) << k;
  }
}

TEST(RationalTest, FloorCeilLog2SmallCases) {
  EXPECT_EQ(BigRational::FromU64(3, 1).FloorLog2(), 1);
  EXPECT_EQ(BigRational::FromU64(3, 1).CeilLog2(), 2);
  EXPECT_EQ(BigRational::FromU64(1, 3).FloorLog2(), -2);
  EXPECT_EQ(BigRational::FromU64(1, 3).CeilLog2(), -1);
  EXPECT_EQ(BigRational::FromU64(5, 3).FloorLog2(), 0);
  EXPECT_EQ(BigRational::FromU64(5, 3).CeilLog2(), 1);
  EXPECT_EQ(BigRational::FromU64(7, 2).FloorLog2(), 1);
  EXPECT_EQ(BigRational::FromU64(7, 2).CeilLog2(), 2);
}

// Property sweep: floor/ceil log2 of random rationals must satisfy
// 2^floor <= x < 2^(floor+1) and 2^(ceil-1) < x <= 2^ceil.
TEST(RationalTest, FloorCeilLog2DefinitionalProperty) {
  RandomEngine rng(101);
  for (int iter = 0; iter < 2000; ++iter) {
    const int nbits = 1 + static_cast<int>(rng.NextBelow(160));
    const int dbits = 1 + static_cast<int>(rng.NextBelow(160));
    const BigRational x(RandomValue(rng, nbits), RandomValue(rng, dbits));
    const int f = x.FloorLog2();
    const int c = x.CeilLog2();
    EXPECT_GE(x.CompareWithPowerOfTwo(f), 0);
    EXPECT_LT(x.CompareWithPowerOfTwo(f + 1), 0);
    EXPECT_LE(x.CompareWithPowerOfTwo(c), 0);
    EXPECT_GT(x.CompareWithPowerOfTwo(c - 1), 0);
    EXPECT_TRUE(c == f || c == f + 1);
  }
}

TEST(RationalTest, FloorLog2MatchesDoubleAwayFromBoundaries) {
  RandomEngine rng(102);
  for (int iter = 0; iter < 1000; ++iter) {
    const uint64_t num = 1 + rng.NextBelow((uint64_t{1} << 50) - 1);
    const uint64_t den = 1 + rng.NextBelow((uint64_t{1} << 50) - 1);
    const double lg = std::log2(static_cast<double>(num) /
                                static_cast<double>(den));
    // Skip near-integer logs where double rounding is ambiguous.
    if (std::abs(lg - std::round(lg)) < 1e-9) continue;
    EXPECT_EQ(BigRational::FromU64(num, den).FloorLog2(),
              static_cast<int>(std::floor(lg)))
        << num << "/" << den;
  }
}

TEST(RationalTest, ToDoubleAccuracy) {
  RandomEngine rng(103);
  for (int iter = 0; iter < 500; ++iter) {
    const uint64_t num = 1 + rng.NextBelow(1u << 30);
    const uint64_t den = 1 + rng.NextBelow(1u << 30);
    const double expect = static_cast<double>(num) / static_cast<double>(den);
    EXPECT_NEAR(BigRational::FromU64(num, den).ToDouble(), expect,
                expect * 1e-12);
  }
}

TEST(RationalTest, ToDoubleHugeValues) {
  const BigRational big(BigUInt::PowerOfTwo(300), BigUInt(uint64_t{1}));
  EXPECT_NEAR(big.ToDouble() / std::ldexp(1.0, 300), 1.0, 1e-12);
  const BigRational tiny(BigUInt(uint64_t{1}), BigUInt::PowerOfTwo(300));
  EXPECT_NEAR(tiny.ToDouble() * std::ldexp(1.0, 300), 1.0, 1e-12);
}

TEST(RationalTest, ZeroHandling) {
  BigRational z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.ToDouble(), 0.0);
  EXPECT_LT(BigRational::Compare(z, BigRational::FromU64(1, 1000000)), 0);
}

TEST(Rational64Test, Basics) {
  Rational64 r(3, 4);
  EXPECT_EQ(r.ToDouble(), 0.75);
  EXPECT_FALSE(r.IsZero());
  EXPECT_TRUE(Rational64().IsZero());
  EXPECT_TRUE(BigRational::FromRational64(r) == BigRational::FromU64(3, 4));
}

}  // namespace
}  // namespace dpss
