// Tests for the de-amortized global rebuilding mode (paper §4.5): bounded
// per-update migration work, correctness of queries *during* a migration,
// invariants across the active/next swap, and equivalence of the final
// state with the amortised mode.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/dpss_sampler.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace dpss {
namespace {

using testing_util::BernoulliZScore;

DpssSampler::Options Deamortized(uint64_t seed) {
  DpssSampler::Options o;
  o.seed = seed;
  o.deamortized_rebuild = true;
  return o;
}

TEST(DeamortizedTest, MigrationStartsAndCompletes) {
  DpssSampler s(Deamortized(1));
  std::vector<DpssSampler::ItemId> ids;
  bool saw_migration = false;
  for (int i = 0; i < 2000; ++i) {
    ids.push_back(s.Insert(1 + (i % 1000)));
    saw_migration |= s.migration_in_progress();
  }
  EXPECT_TRUE(saw_migration);
  EXPECT_GT(s.rebuild_count(), 0u);
  // Steady state: no migration pending once size stabilises and the last
  // one drained.
  for (int i = 0; i < 100 && s.migration_in_progress(); ++i) {
    const auto id = s.Insert(5);
    s.Erase(id);
  }
  EXPECT_FALSE(s.migration_in_progress());
  s.CheckInvariants();
}

TEST(DeamortizedTest, MigrationStepIsBounded) {
  DpssSampler::Options o = Deamortized(2);
  o.migrate_per_update = 6;
  DpssSampler s(o);
  RandomEngine rng(3);
  std::vector<DpssSampler::ItemId> live;
  for (int i = 0; i < 30000; ++i) {
    if (!live.empty() && rng.NextBelow(3) == 0) {
      const size_t idx = rng.NextBelow(live.size());
      s.Erase(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    } else {
      live.push_back(s.Insert(1 + rng.NextBelow(1u << 24)));
    }
  }
  EXPECT_GT(s.rebuild_count(), 2u);
  // The observable de-amortization guarantee: no single update ever copied
  // more than migrate_per_update items.
  EXPECT_LE(s.max_migration_step(), 6u);
  s.CheckInvariants();
}

TEST(DeamortizedTest, InvariantsHoldMidMigration) {
  DpssSampler s(Deamortized(4));
  for (int i = 0; i < 40; ++i) s.Insert(1 + i);
  // Force a migration and check invariants at every step while in flight.
  int checked = 0;
  for (int i = 0; i < 400; ++i) {
    s.Insert(7 + i);
    if (s.migration_in_progress()) {
      s.CheckInvariants();
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(DeamortizedTest, EraseDuringMigration) {
  DpssSampler s(Deamortized(5));
  std::vector<DpssSampler::ItemId> ids;
  for (int i = 0; i < 33; ++i) ids.push_back(s.Insert(100 + i));
  // Trigger a migration, then erase both migrated and not-yet-migrated
  // items while it is in flight.
  size_t next = ids.size();
  for (int i = 0; i < 6 && !s.migration_in_progress(); ++i) {
    ids.push_back(s.Insert(1000 + i));
  }
  ASSERT_TRUE(s.migration_in_progress());
  s.Erase(ids[0]);             // likely migrated already (low slot id)
  s.Erase(ids[ids.size() - 1]);  // likely not yet migrated
  s.CheckInvariants();
  // Drain.
  while (s.migration_in_progress()) {
    const auto id = s.Insert(3);
    s.Erase(id);
  }
  s.CheckInvariants();
  (void)next;
}

TEST(DeamortizedTest, DistributionCorrectDuringMigration) {
  // Queries served while the migration is in flight must still be exact.
  DpssSampler s(Deamortized(6));
  std::vector<DpssSampler::ItemId> ids;
  for (int i = 0; i < 32; ++i) ids.push_back(s.Insert(1 + i * 13));
  // Push just over the doubling threshold to kick off a migration.
  while (!s.migration_in_progress()) ids.push_back(s.Insert(41));
  ASSERT_TRUE(s.migration_in_progress());

  BigUInt wnum, wden;
  s.ComputeW({1, 1}, {0, 1}, &wnum, &wden);
  const double inv_w = BigRational(wden, wnum).ToDouble();
  RandomEngine rng(7);
  const uint64_t trials = 60000;
  std::vector<uint64_t> hits(ids.size(), 0);
  for (uint64_t t = 0; t < trials; ++t) {
    // Use the const overload: no updates, so the migration stays in flight.
    for (auto id : s.Sample({1, 1}, {0, 1}, rng)) {
      for (size_t i = 0; i < ids.size(); ++i) {
        if (ids[i] == id) ++hits[i];
      }
    }
  }
  ASSERT_TRUE(s.migration_in_progress());
  for (size_t i = 0; i < ids.size(); ++i) {
    const double p =
        std::min(1.0, static_cast<double>(s.GetWeight(ids[i]).mult) * inv_w);
    EXPECT_LE(std::abs(BernoulliZScore(hits[i], trials, p)), 4.75) << i;
  }
}

TEST(DeamortizedTest, ShrinkMigration) {
  DpssSampler s(Deamortized(8));
  std::vector<DpssSampler::ItemId> ids;
  for (int i = 0; i < 5000; ++i) ids.push_back(s.Insert(1 + (i % 113)));
  while (s.migration_in_progress()) {
    const auto id = s.Insert(1);
    s.Erase(id);
  }
  const uint64_t rebuilds = s.rebuild_count();
  for (int i = 0; i < 4800; ++i) s.Erase(ids[i]);
  // Drain any in-flight shrink migration.
  for (int i = 0; i < 5000 && s.migration_in_progress(); ++i) {
    const auto id = s.Insert(1);
    s.Erase(id);
  }
  EXPECT_GT(s.rebuild_count(), rebuilds);
  s.CheckInvariants();
  // Capacity followed the shrink.
  EXPECT_LE(s.level1_log2_capacity(), 12);
}

TEST(DeamortizedTest, MatchesAmortizedDistribution) {
  // Same weight stream, both modes: frequencies agree with the analytic
  // probabilities (and hence with each other).
  std::vector<uint64_t> weights;
  RandomEngine wgen(9);
  for (int i = 0; i < 500; ++i) weights.push_back(1 + wgen.NextBelow(1u << 18));

  DpssSampler amortized(weights, 10);
  DpssSampler::Options o = Deamortized(10);
  DpssSampler deamortized(weights, o);

  BigUInt wnum, wden;
  amortized.ComputeW({1, 4}, {99, 1}, &wnum, &wden);
  const double inv_w = BigRational(wden, wnum).ToDouble();
  RandomEngine r1(11), r2(12);
  const uint64_t trials = 30000;
  uint64_t hits1 = 0, hits2 = 0;  // track item 0
  for (uint64_t t = 0; t < trials; ++t) {
    for (auto id : amortized.Sample({1, 4}, {99, 1}, r1)) hits1 += id == 0;
    for (auto id : deamortized.Sample({1, 4}, {99, 1}, r2)) hits2 += id == 0;
  }
  const double p = std::min(1.0, static_cast<double>(weights[0]) * inv_w);
  EXPECT_LE(std::abs(BernoulliZScore(hits1, trials, p)), 4.75);
  EXPECT_LE(std::abs(BernoulliZScore(hits2, trials, p)), 4.75);
}

TEST(DeamortizedTest, HeavyChurnStress) {
  DpssSampler s(Deamortized(13));
  RandomEngine rng(14);
  std::vector<DpssSampler::ItemId> live;
  for (int step = 0; step < 20000; ++step) {
    const uint64_t op = rng.NextBelow(100);
    if (op < 55 || live.empty()) {
      live.push_back(s.Insert(rng.NextBelow(1u << 28)));
    } else {
      const size_t idx = rng.NextBelow(live.size());
      s.Erase(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
    if (step % 2500 == 0) s.CheckInvariants();
  }
  s.CheckInvariants();
  EXPECT_EQ(s.size(), live.size());
}

}  // namespace
}  // namespace dpss
