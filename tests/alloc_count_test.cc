// Allocation-count hook: proves the "zero heap allocations per query" claim
// of the u128 fast path + pooled QueryScratch design, and the matching
// claim for the update hot path (Insert/Erase/SetWeight with the u128
// total-weight cache). This test overrides the global operator new/delete
// to count allocations, so it lives in its own binary (see CMakeLists.txt).
//
// The counter is exact, not statistical: after a warm-up phase has grown
// every pooled buffer to its steady-state capacity, a fixed-seed batch of
// small-μ queries — or steady-state updates — over a u64-weight workload
// must perform zero allocations.

#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "core/dpss_sampler.h"
#include "util/random.h"

namespace {

std::size_t g_alloc_count = 0;

}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dpss {
namespace {

TEST(AllocationCount, FastPathQueryIsAllocationFree) {
  RandomEngine wrng(41);
  std::vector<uint64_t> weights(1 << 16);
  for (auto& w : weights) w = 1 + wrng.NextBelow(uint64_t{1} << 20);
  DpssSampler s(weights, 42);

  RandomEngine rng(43);
  std::vector<DpssSampler::ItemId> buf;
  const Rational64 alpha{1, 4};  // μ ≈ 4
  const Rational64 beta{0, 1};

  // Warm-up: grow the output buffer and every scratch pool to steady state.
  for (int q = 0; q < 2000; ++q) s.SampleInto(alpha, beta, rng, &buf);

  const std::size_t before = g_alloc_count;
  uint64_t sampled = 0;
  for (int q = 0; q < 500; ++q) {
    s.SampleInto(alpha, beta, rng, &buf);
    sampled += buf.size();
  }
  EXPECT_EQ(g_alloc_count - before, 0u)
      << "fast-path queries allocated; sampled " << sampled << " items";
  EXPECT_GT(sampled, 0u);
}

TEST(AllocationCount, LargeMuQueryScansSlabWithoutAllocating) {
  // The μ ≈ 64 regime walks many buckets per query, so ExtractItems streams
  // through whole slab extents (and the block-RNG prefetch path runs at its
  // full depth). The slab layout must keep that scan allocation-free: the
  // extents are read in place through BucketView, never copied out.
  RandomEngine wrng(60);
  std::vector<uint64_t> weights(1 << 16);
  for (auto& w : weights) w = 1 + wrng.NextBelow(uint64_t{1} << 20);
  DpssSampler s(weights, 61);

  RandomEngine rng(62);
  std::vector<DpssSampler::ItemId> buf;
  const Rational64 alpha{1, 64};
  const Rational64 beta{0, 1};
  for (int q = 0; q < 500; ++q) s.SampleInto(alpha, beta, rng, &buf);

  // A μ ≈ 64 window draws tens of thousands of coins, enough that the
  // ~2^-16-per-coin first-rung ambiguity — whose exact BigUInt resume is
  // *allowed* to allocate — fires now and then. As in the churn tests
  // below, the steady-state claim is windowed: the scan path itself never
  // allocates, so clean windows of whole queries must exist.
  bool clean_window = false;
  std::size_t min_window_allocs = ~std::size_t{0};
  uint64_t sampled = 0;
  for (int window = 0; window < 8 && !clean_window; ++window) {
    const std::size_t before = g_alloc_count;
    for (int q = 0; q < 50; ++q) {
      s.SampleInto(alpha, beta, rng, &buf);
      sampled += buf.size();
    }
    const std::size_t allocs = g_alloc_count - before;
    if (allocs < min_window_allocs) min_window_allocs = allocs;
    clean_window = allocs == 0;
  }
  EXPECT_TRUE(clean_window)
      << "no allocation-free window of 50 slab-scan queries; best window "
      << "had " << min_window_allocs << " allocations";
  EXPECT_GT(sampled, 50u * 16);  // μ ≈ 64: the windows really were large
}

TEST(AllocationCount, WarmedUpUpdatesAreAllocationFree) {
  // Steady-state churn: Erase hands its slot to the next Insert, SetWeight
  // patches in place or relocates between already-grown buckets, and Σw
  // maintenance runs on the u128 cache — no path should touch the heap.
  RandomEngine wrng(50);
  std::vector<uint64_t> weights(1 << 14);
  for (auto& w : weights) w = 1 + wrng.NextBelow(uint64_t{1} << 20);
  DpssSampler s(weights, 51);

  std::vector<DpssSampler::ItemId> live;
  for (uint64_t i = 0; i < weights.size(); ++i) live.push_back(i);

  RandomEngine rng(52);
  auto churn_step = [&] {
    const uint64_t op = rng.NextBelow(4);
    const size_t idx = rng.NextBelow(live.size());
    if (op == 0) {
      // Replacement churn at constant size: no rebuild can trigger.
      s.Erase(live[idx]);
      live[idx] = s.Insert(1 + rng.NextBelow(uint64_t{1} << 20));
    } else if (op == 1) {
      // Same-bucket patch.
      const uint64_t floor = uint64_t{1}
                             << s.GetWeight(live[idx]).BucketIndex();
      s.SetWeight(live[idx], floor + rng.NextBelow(floor));
    } else {
      // Random reweight, usually rebucketing.
      s.SetWeight(live[idx], 1 + rng.NextBelow(uint64_t{1} << 20));
    }
  };

  // Warm-up: grow every bucket array, the free list, and the scratch pools
  // to their steady-state capacities.
  for (int i = 0; i < 60000; ++i) churn_step();

  // Random churn keeps setting (ever rarer) bucket-occupancy records, and a
  // record that crosses a capacity boundary reallocates that bucket — an
  // amortized-O(1) structural event, not per-update overhead. The steady-
  // state claim is that whole windows of updates run allocation-free: if
  // any per-update path allocated, EVERY window would allocate thousands
  // of times and this loop could never find a clean one.
  bool clean_window = false;
  std::size_t min_window_allocs = ~std::size_t{0};
  for (int window = 0; window < 8 && !clean_window; ++window) {
    const std::size_t before = g_alloc_count;
    for (int i = 0; i < 20000; ++i) churn_step();
    const std::size_t allocs = g_alloc_count - before;
    if (allocs < min_window_allocs) min_window_allocs = allocs;
    clean_window = allocs == 0;
  }
  EXPECT_TRUE(clean_window)
      << "no allocation-free window of 20000 updates; best window had "
      << min_window_allocs << " allocations";

  // The structure is still coherent and the totals still exact.
  s.CheckInvariants();
}

TEST(AllocationCount, MixedUpdateQuerySteadyStateIsAllocationFree) {
  RandomEngine wrng(54);
  std::vector<uint64_t> weights(1 << 14);
  for (auto& w : weights) w = 1 + wrng.NextBelow(uint64_t{1} << 20);
  DpssSampler s(weights, 55);
  std::vector<DpssSampler::ItemId> live;
  for (uint64_t i = 0; i < weights.size(); ++i) live.push_back(i);

  RandomEngine rng(56);
  std::vector<DpssSampler::ItemId> buf;
  auto mixed_step = [&] {
    const size_t idx = rng.NextBelow(live.size());
    s.Erase(live[idx]);
    live[idx] = s.Insert(1 + rng.NextBelow(uint64_t{1} << 20));
    s.SetWeight(live[rng.NextBelow(live.size())],
                1 + rng.NextBelow(uint64_t{1} << 20));
    s.SampleInto({1, 4}, {0, 1}, rng, &buf);
  };
  for (int i = 0; i < 5000; ++i) mixed_step();

  // Same windowed gate as the pure-update test (see comment there).
  bool clean_window = false;
  std::size_t min_window_allocs = ~std::size_t{0};
  for (int window = 0; window < 8 && !clean_window; ++window) {
    const std::size_t before = g_alloc_count;
    for (int i = 0; i < 2000; ++i) mixed_step();
    const std::size_t allocs = g_alloc_count - before;
    if (allocs < min_window_allocs) min_window_allocs = allocs;
    clean_window = allocs == 0;
  }
  EXPECT_TRUE(clean_window)
      << "no allocation-free window of 2000 mixed update+query rounds; "
      << "best window had " << min_window_allocs << " allocations";
}

TEST(AllocationCount, ForcedBigIntPathAllocatesWhereFastPathDoesNot) {
  // Contrast measurement: the exact BigUInt path allocates on every coin
  // (std::function state in the lazy Bernoulli framework, Knuth-D division
  // temporaries), several allocations per sampled item — that overhead is
  // precisely what the u128 mirror removes. Run the same warmed-up workload
  // both ways and pin the contrast down.
  RandomEngine wrng(44);
  std::vector<uint64_t> weights(1 << 14);
  for (auto& w : weights) w = 1 + wrng.NextBelow(uint64_t{1} << 20);
  DpssSampler s(weights, 45);

  std::vector<DpssSampler::ItemId> buf;
  {
    RandomEngine rng(46);
    for (int q = 0; q < 500; ++q) s.SampleInto({1, 4}, {0, 1}, rng, &buf);
  }

  s.SetForceBigIntArithmetic(true);
  RandomEngine rng_slow(47);
  const std::size_t slow_before = g_alloc_count;
  for (int q = 0; q < 500; ++q) s.SampleInto({1, 4}, {0, 1}, rng_slow, &buf);
  const std::size_t slow_allocs = g_alloc_count - slow_before;

  s.SetForceBigIntArithmetic(false);
  RandomEngine rng_fast(47);
  const std::size_t fast_before = g_alloc_count;
  for (int q = 0; q < 500; ++q) s.SampleInto({1, 4}, {0, 1}, rng_fast, &buf);
  const std::size_t fast_allocs = g_alloc_count - fast_before;

  EXPECT_EQ(fast_allocs, 0u);
  EXPECT_GT(slow_allocs, 500u)  // well over one per query
      << "expected the exact path to allocate per coin";
}

}  // namespace
}  // namespace dpss
