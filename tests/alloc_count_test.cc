// Allocation-count hook: proves the "zero heap allocations per query" claim
// of the u128 fast path + pooled QueryScratch design. This test overrides
// the global operator new/delete to count allocations, so it lives in its
// own binary (see CMakeLists.txt).
//
// The counter is exact, not statistical: after a warm-up phase has grown
// every pooled buffer to its steady-state capacity, a fixed-seed batch of
// small-μ queries over a u64-weight workload must perform zero allocations.

#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "core/dpss_sampler.h"
#include "util/random.h"

namespace {

std::size_t g_alloc_count = 0;

}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dpss {
namespace {

TEST(AllocationCount, FastPathQueryIsAllocationFree) {
  RandomEngine wrng(41);
  std::vector<uint64_t> weights(1 << 16);
  for (auto& w : weights) w = 1 + wrng.NextBelow(uint64_t{1} << 20);
  DpssSampler s(weights, 42);

  RandomEngine rng(43);
  std::vector<DpssSampler::ItemId> buf;
  const Rational64 alpha{1, 4};  // μ ≈ 4
  const Rational64 beta{0, 1};

  // Warm-up: grow the output buffer and every scratch pool to steady state.
  for (int q = 0; q < 2000; ++q) s.SampleInto(alpha, beta, rng, &buf);

  const std::size_t before = g_alloc_count;
  uint64_t sampled = 0;
  for (int q = 0; q < 500; ++q) {
    s.SampleInto(alpha, beta, rng, &buf);
    sampled += buf.size();
  }
  EXPECT_EQ(g_alloc_count - before, 0u)
      << "fast-path queries allocated; sampled " << sampled << " items";
  EXPECT_GT(sampled, 0u);
}

TEST(AllocationCount, ForcedBigIntPathAllocatesWhereFastPathDoesNot) {
  // Contrast measurement: the exact BigUInt path allocates on every coin
  // (std::function state in the lazy Bernoulli framework, Knuth-D division
  // temporaries), several allocations per sampled item — that overhead is
  // precisely what the u128 mirror removes. Run the same warmed-up workload
  // both ways and pin the contrast down.
  RandomEngine wrng(44);
  std::vector<uint64_t> weights(1 << 14);
  for (auto& w : weights) w = 1 + wrng.NextBelow(uint64_t{1} << 20);
  DpssSampler s(weights, 45);

  std::vector<DpssSampler::ItemId> buf;
  {
    RandomEngine rng(46);
    for (int q = 0; q < 500; ++q) s.SampleInto({1, 4}, {0, 1}, rng, &buf);
  }

  s.SetForceBigIntArithmetic(true);
  RandomEngine rng_slow(47);
  const std::size_t slow_before = g_alloc_count;
  for (int q = 0; q < 500; ++q) s.SampleInto({1, 4}, {0, 1}, rng_slow, &buf);
  const std::size_t slow_allocs = g_alloc_count - slow_before;

  s.SetForceBigIntArithmetic(false);
  RandomEngine rng_fast(47);
  const std::size_t fast_before = g_alloc_count;
  for (int q = 0; q < 500; ++q) s.SampleInto({1, 4}, {0, 1}, rng_fast, &buf);
  const std::size_t fast_allocs = g_alloc_count - fast_before;

  EXPECT_EQ(fast_allocs, 0u);
  EXPECT_GT(slow_allocs, 500u)  // well over one per query
      << "expected the exact path to allocate per coin";
}

}  // namespace
}  // namespace dpss
