// Tests for the 4S lookup table: exact outcome masses, alias-table mass
// conservation, and sampling frequencies against the analytic distribution.

#include "core/lookup_table.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "util/random.h"

namespace dpss {
namespace {

uint64_t PackConfig(const std::vector<int>& counts, int bits) {
  uint64_t cfg = 0;
  for (size_t j = 0; j < counts.size(); ++j) {
    cfg |= static_cast<uint64_t>(counts[j]) << (j * bits);
  }
  return cfg;
}

TEST(LookupTableTest, BitsPerSlot) {
  EXPECT_EQ(LookupTable::BitsPerSlot(1), 1);
  EXPECT_EQ(LookupTable::BitsPerSlot(3), 2);
  EXPECT_EQ(LookupTable::BitsPerSlot(4), 3);
  EXPECT_EQ(LookupTable::BitsPerSlot(7), 3);
  EXPECT_EQ(LookupTable::BitsPerSlot(8), 4);
}

TEST(LookupTableTest, SlotProbNumeratorCapsAtMSquared) {
  LookupTable t(/*m=*/4, /*k_slots=*/4);
  // m² = 16; slot j prob numerator = min(16, 2^{j+1}·c).
  EXPECT_EQ(t.SlotProbNumerator(1, 0), 0u);
  EXPECT_EQ(t.SlotProbNumerator(1, 1), 4u);
  EXPECT_EQ(t.SlotProbNumerator(1, 4), 16u);
  EXPECT_EQ(t.SlotProbNumerator(2, 1), 8u);
  EXPECT_EQ(t.SlotProbNumerator(2, 3), 16u);  // capped
  EXPECT_EQ(t.SlotProbNumerator(4, 1), 16u);  // 2^5 = 32 capped
}

TEST(LookupTableTest, OutcomeMassesSumToDenominator) {
  LookupTable t(4, 4);
  RandomEngine rng(1);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<int> counts(4);
    for (auto& c : counts) c = static_cast<int>(rng.NextBelow(5));
    const uint64_t cfg = PackConfig(counts, t.bits_per_slot());
    uint64_t sum = 0;
    for (uint32_t r = 0; r < 16; ++r) sum += t.OutcomeMassNumerator(cfg, r);
    EXPECT_EQ(sum, t.MassDenominator());
  }
}

TEST(LookupTableTest, OutcomeMassMatchesProductFormula) {
  LookupTable t(4, 3);
  const std::vector<int> counts = {1, 2, 0};
  const uint64_t cfg = PackConfig(counts, t.bits_per_slot());
  const uint64_t m2 = 16;
  // p_1 = 4/16, p_2 = 16/16 (capped: 2^3·2 = 16), p_3 = 0.
  // Outcome r = 0b010 (only item 2): (1-p1)·p2·(1-p3) = 12·16·16.
  EXPECT_EQ(t.OutcomeMassNumerator(cfg, 0b010), (m2 - 4) * 16 * 16);
  // Outcome r = 0b011: p1·p2·(1-p3) = 4·16·16.
  EXPECT_EQ(t.OutcomeMassNumerator(cfg, 0b011), 4 * 16 * 16);
  // Any outcome with bit 3 set has probability 0.
  EXPECT_EQ(t.OutcomeMassNumerator(cfg, 0b100), 0u);
  EXPECT_EQ(t.OutcomeMassNumerator(cfg, 0b111), 0u);
  // Item 2 is certain: outcomes without bit 2 have probability 0.
  EXPECT_EQ(t.OutcomeMassNumerator(cfg, 0b000), 0u);
  EXPECT_EQ(t.OutcomeMassNumerator(cfg, 0b001), 0u);
}

TEST(LookupTableTest, SamplingFrequenciesMatchExactMasses) {
  LookupTable t(4, 4);
  RandomEngine rng(7);
  const std::vector<std::vector<int>> configs = {
      {1, 0, 2, 4}, {4, 4, 4, 4}, {0, 0, 0, 0}, {1, 1, 1, 1}, {3, 0, 0, 1}};
  for (const auto& counts : configs) {
    const uint64_t cfg = PackConfig(counts, t.bits_per_slot());
    const uint64_t trials = 200000;
    std::vector<uint64_t> observed(16, 0);
    for (uint64_t i = 0; i < trials; ++i) {
      const uint32_t r = t.Sample(cfg, rng);
      ASSERT_LT(r, 16u);
      observed[r]++;
    }
    std::vector<double> expected(16);
    for (uint32_t r = 0; r < 16; ++r) {
      expected[r] = static_cast<double>(t.OutcomeMassNumerator(cfg, r)) /
                    static_cast<double>(t.MassDenominator());
    }
    int dof = 0;
    const double chi = testing_util::ChiSquare(observed, expected, trials, &dof);
    EXPECT_LE(chi, testing_util::ChiSquareGate(dof));
  }
}

TEST(LookupTableTest, AllZeroConfigAlwaysReturnsEmpty) {
  LookupTable t(8, 8);
  RandomEngine rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(t.Sample(0, rng), 0u);
  }
}

TEST(LookupTableTest, FullConfigSamplesHighSlotsAlways) {
  // With c_j = m, slots with 2^{j+1}·m >= m² are certain: j+1 >= log2 m.
  LookupTable t(4, 4);
  RandomEngine rng(9);
  const uint64_t cfg = PackConfig({4, 4, 4, 4}, t.bits_per_slot());
  for (int i = 0; i < 200; ++i) {
    const uint32_t r = t.Sample(cfg, rng);
    // p_2 = min(16, 8·4)/16 = 1, likewise p_3, p_4.
    EXPECT_TRUE((r & 0b1110) == 0b1110) << r;
  }
}

TEST(LookupTableTest, RowsAreCachedPerConfiguration) {
  LookupTable t(4, 4);
  RandomEngine rng(10);
  EXPECT_EQ(t.CachedRows(), 0u);
  const uint64_t cfg1 = PackConfig({1, 2, 3, 4}, t.bits_per_slot());
  t.Sample(cfg1, rng);
  EXPECT_EQ(t.CachedRows(), 1u);
  t.Sample(cfg1, rng);
  EXPECT_EQ(t.CachedRows(), 1u);
  const uint64_t cfg2 = PackConfig({2, 2, 2, 2}, t.bits_per_slot());
  t.Sample(cfg2, rng);
  EXPECT_EQ(t.CachedRows(), 2u);
  EXPECT_GT(t.CacheBytes(), 0u);
}

TEST(LookupTableTest, LargeParameterSetWorks) {
  // m=8, K=8: the configuration of the largest deployments (n0 ~ 2^60).
  LookupTable t(8, 8);
  RandomEngine rng(11);
  const uint64_t cfg = PackConfig({8, 7, 6, 5, 4, 3, 2, 1}, t.bits_per_slot());
  uint64_t sum = 0;
  for (uint32_t r = 0; r < (1u << 8); ++r) {
    sum += t.OutcomeMassNumerator(cfg, r);
  }
  EXPECT_EQ(sum, t.MassDenominator());
  for (int i = 0; i < 1000; ++i) {
    t.Sample(cfg, rng);
  }
}

// Property sweep: for random configurations across (m, K), the per-slot
// marginal inclusion frequency must match p_j = min(1, 2^{j+1} c_j / m²).
class LookupTableMarginalTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LookupTableMarginalTest, MarginalsMatch) {
  const auto [m, k] = GetParam();
  LookupTable t(m, k);
  RandomEngine rng(3000 + m * 13 + k);
  std::vector<int> counts(k);
  for (auto& c : counts) c = static_cast<int>(rng.NextBelow(m + 1));
  const uint64_t cfg = PackConfig(counts, t.bits_per_slot());
  const uint64_t trials = 150000;
  std::vector<uint64_t> hits(k, 0);
  for (uint64_t i = 0; i < trials; ++i) {
    const uint32_t r = t.Sample(cfg, rng);
    for (int j = 0; j < k; ++j) hits[j] += (r >> j) & 1;
  }
  for (int j = 0; j < k; ++j) {
    const double p =
        static_cast<double>(t.SlotProbNumerator(j + 1, counts[j])) /
        static_cast<double>(m * m);
    EXPECT_LE(std::abs(testing_util::BernoulliZScore(hits[j], trials, p)), 4.5)
        << "m=" << m << " k=" << k << " j=" << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Params, LookupTableMarginalTest,
                         ::testing::Values(std::pair<int, int>{4, 6},
                                           std::pair<int, int>{8, 8},
                                           std::pair<int, int>{2, 4},
                                           std::pair<int, int>{6, 6}));

}  // namespace
}  // namespace dpss
