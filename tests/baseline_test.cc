// Tests for the baseline samplers: NaiveDpss (exact and fast modes),
// BucketJumpSampler (fixed probabilities), and RebuildDpss — plus a
// three-way agreement check of the inclusion probabilities across Naive,
// BucketJump and HALT on the same instance.

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/bucket_jump.h"
#include "baseline/naive_dpss.h"
#include "baseline/rebuild_dpss.h"
#include "core/dpss_sampler.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace dpss {
namespace {

using testing_util::BernoulliZScore;

// Insert/erase/set-weight semantics, zero weights and stale-id safety for
// NaiveDpss and RebuildDpss now live in sampler_contract_test.cc, which
// drives them (and every other backend) through the Sampler interface.
// This file keeps what is backend-specific: the fast (double-arithmetic)
// NaiveDpss mode, raw BucketJumpSampler behaviour, and the cross-sampler
// statistical agreement check.

TEST(NaiveDpssTest, FastModeIsApproximatelyCorrect) {
  NaiveDpss s(/*exact=*/false);
  std::vector<NaiveDpss::ItemId> ids;
  for (uint64_t w : {10u, 20u, 30u, 40u}) ids.push_back(s.Insert(w));
  RandomEngine rng(4);
  const uint64_t trials = 60000;
  std::map<uint64_t, uint64_t> hits;
  for (uint64_t t = 0; t < trials; ++t) {
    for (auto id : s.Sample({1, 1}, {0, 1}, rng)) hits[id]++;
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    const double p = (10.0 + 10.0 * i) / 100.0;
    EXPECT_LE(std::abs(BernoulliZScore(hits[ids[i]], trials, p)), 4.5);
  }
}

TEST(BucketJumpTest, FixedProbabilityFrequencies) {
  BucketJumpSampler s;
  // Probabilities spanning many buckets: 1, 3/4, 1/2, 1/5, 1/100, 1/2^20, 0.
  struct Probe {
    uint64_t payload;
    uint64_t num, den;
  };
  const std::vector<Probe> probes = {
      {0, 1, 1},  {1, 3, 4},       {2, 1, 2}, {3, 1, 5},
      {4, 1, 100}, {5, 1, 1 << 20}, {6, 0, 1},
  };
  for (const auto& p : probes) {
    s.Insert(p.payload, BigUInt(p.num), BigUInt(p.den));
  }
  EXPECT_EQ(s.size(), probes.size());
  RandomEngine rng(5);
  const uint64_t trials = 200000;
  std::vector<uint64_t> hits(probes.size(), 0);
  for (uint64_t t = 0; t < trials; ++t) {
    for (uint64_t payload : s.Sample(rng)) hits[payload]++;
  }
  for (const auto& p : probes) {
    const double prob = static_cast<double>(p.num) / p.den;
    EXPECT_LE(std::abs(BernoulliZScore(hits[p.payload], trials, prob)), 4.5)
        << p.payload;
  }
  EXPECT_EQ(hits[6], 0u);  // p = 0 never sampled
}

TEST(BucketJumpTest, EraseRemovesItems) {
  BucketJumpSampler s;
  const auto h1 = s.Insert(1, BigUInt(uint64_t{1}), BigUInt(uint64_t{1}));
  const auto h2 = s.Insert(2, BigUInt(uint64_t{1}), BigUInt(uint64_t{1}));
  RandomEngine rng(6);
  EXPECT_EQ(s.Sample(rng).size(), 2u);
  s.Erase(h1);
  EXPECT_EQ(s.size(), 1u);
  for (int i = 0; i < 20; ++i) {
    const auto out = s.Sample(rng);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 2u);
  }
  s.Erase(h2);
  EXPECT_TRUE(s.Sample(rng).empty());
}

TEST(BucketJumpTest, ClampsProbabilitiesAboveOne) {
  BucketJumpSampler s;
  s.Insert(7, BigUInt(uint64_t{10}), BigUInt(uint64_t{3}));
  RandomEngine rng(7);
  for (int i = 0; i < 20; ++i) {
    const auto out = s.Sample(rng);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 7u);
  }
}

TEST(RebuildDpssTest, TracksParameterizedProbabilities) {
  // (α, β) = (1, 0): p_x = w/Σw, recomputed after every update.
  RebuildDpss s({1, 1}, {0, 1});
  const auto a = s.Insert(30);
  const auto b = s.Insert(10);
  RandomEngine rng(8);
  const uint64_t trials = 60000;
  uint64_t hits_a = 0, hits_b = 0;
  for (uint64_t t = 0; t < trials; ++t) {
    for (auto id : s.Sample(rng)) {
      hits_a += id == a;
      hits_b += id == b;
    }
  }
  EXPECT_LE(std::abs(BernoulliZScore(hits_a, trials, 0.75)), 4.5);
  EXPECT_LE(std::abs(BernoulliZScore(hits_b, trials, 0.25)), 4.5);

  // Insert shifts both probabilities instantly (w/Σw with Σw = 80).
  const auto c = s.Insert(40);
  (void)c;
  uint64_t hits_a2 = 0;
  for (uint64_t t = 0; t < trials; ++t) {
    for (auto id : s.Sample(rng)) hits_a2 += id == a;
  }
  EXPECT_LE(std::abs(BernoulliZScore(hits_a2, trials, 30.0 / 80.0)), 4.5);

  s.Erase(b);
  EXPECT_EQ(s.size(), 2u);
}

// Three-way agreement: Naive, BucketJump (built for the query's fixed W) and
// HALT must produce statistically identical marginals on the same instance.
TEST(BaselineAgreementTest, ThreeWayMarginals) {
  RandomEngine wgen(9);
  std::vector<uint64_t> weights;
  for (int i = 0; i < 40; ++i) weights.push_back(1 + wgen.NextBelow(1u << 16));
  const Rational64 alpha{1, 2};
  const Rational64 beta{333, 1};

  DpssSampler halt_s(weights, 10);
  NaiveDpss naive_s(weights);
  BigUInt wnum, wden;
  halt_s.ComputeW(alpha, beta, &wnum, &wden);
  BucketJumpSampler jump_s;
  for (size_t i = 0; i < weights.size(); ++i) {
    jump_s.Insert(i, BigUInt::MulU64(wden, weights[i]), wnum);
  }

  const uint64_t trials = 50000;
  std::vector<uint64_t> h1(weights.size(), 0), h2(weights.size(), 0),
      h3(weights.size(), 0);
  RandomEngine r1(11), r2(12), r3(13);
  for (uint64_t t = 0; t < trials; ++t) {
    for (auto id : halt_s.Sample(alpha, beta, r1)) h1[id]++;
    for (auto id : naive_s.Sample(alpha, beta, r2)) h2[id]++;
    for (auto id : jump_s.Sample(r3)) h3[id]++;
  }
  const double inv_w = BigRational(wden, wnum).ToDouble();
  for (size_t i = 0; i < weights.size(); ++i) {
    const double p = std::min(1.0, static_cast<double>(weights[i]) * inv_w);
    EXPECT_LE(std::abs(BernoulliZScore(h1[i], trials, p)), 4.5) << "halt " << i;
    EXPECT_LE(std::abs(BernoulliZScore(h2[i], trials, p)), 4.5) << "naive " << i;
    EXPECT_LE(std::abs(BernoulliZScore(h3[i], trials, p)), 4.5) << "jump " << i;
  }
}

}  // namespace
}  // namespace dpss
