// Tests for the two-level ODSS-style dynamic subset sampler: exact
// marginals across probability scales, O(1) individual-probability updates,
// dynamic churn, and agreement with BucketJumpSampler.

#include "baseline/odss.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/bucket_jump.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace dpss {
namespace {

using testing_util::BernoulliZScore;

TEST(OdssTest, EmptySample) {
  OdssSampler s;
  RandomEngine rng(1);
  EXPECT_TRUE(s.Sample(rng).empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(OdssTest, CertainAndImpossibleItems) {
  OdssSampler s;
  s.Insert(1, BigUInt(uint64_t{1}), BigUInt(uint64_t{1}));  // p = 1
  s.Insert(2, BigUInt(uint64_t{5}), BigUInt(uint64_t{2}));  // clamped to 1
  s.Insert(3, BigUInt(), BigUInt(uint64_t{1}));             // p = 0
  RandomEngine rng(2);
  for (int i = 0; i < 100; ++i) {
    const auto out = s.Sample(rng);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE((out[0] == 1 && out[1] == 2) || (out[0] == 2 && out[1] == 1));
  }
}

TEST(OdssTest, MarginalsAcrossScales) {
  OdssSampler s;
  struct Probe {
    uint64_t payload;
    uint64_t num, den;
  };
  const std::vector<Probe> probes = {
      {0, 1, 1},      {1, 2, 3},      {2, 1, 2},       {3, 1, 4},
      {4, 3, 16},     {5, 1, 50},     {6, 1, 1000},    {7, 7, 9},
      {8, 1, 65536},  {9, 1, 3},
  };
  for (const auto& p : probes) s.Insert(p.payload, BigUInt(p.num), BigUInt(p.den));
  RandomEngine rng(3);
  const uint64_t trials = 200000;
  std::vector<uint64_t> hits(probes.size(), 0);
  for (uint64_t t = 0; t < trials; ++t) {
    for (uint64_t payload : s.Sample(rng)) hits[payload]++;
  }
  for (const auto& p : probes) {
    const double prob = static_cast<double>(p.num) / static_cast<double>(p.den);
    EXPECT_LE(std::abs(BernoulliZScore(hits[p.payload], trials, prob)), 4.5)
        << p.payload;
  }
}

TEST(OdssTest, ManyItemsOneBucket) {
  // 500 items with p ~ 1/300 in the same bucket exercise the sparse-bucket
  // path (Ber(p*) + T-Geo): mean output = 500/300.
  OdssSampler s;
  for (int i = 0; i < 500; ++i) {
    s.Insert(i, BigUInt(uint64_t{1}), BigUInt(uint64_t{300}));
  }
  RandomEngine rng(4);
  const uint64_t trials = 50000;
  uint64_t total = 0;
  for (uint64_t t = 0; t < trials; ++t) total += s.Sample(rng).size();
  const double mean = static_cast<double>(total) / trials;
  const double mu = 500.0 / 300.0;
  EXPECT_NEAR(mean, mu, 4.5 * std::sqrt(mu / trials));
}

TEST(OdssTest, UpdateProbabilityMovesBuckets) {
  OdssSampler s;
  const auto h = s.Insert(9, BigUInt(uint64_t{1}), BigUInt(uint64_t{1 << 20}));
  RandomEngine rng(5);
  uint64_t hits = 0;
  for (int i = 0; i < 2000; ++i) hits += s.Sample(rng).size();
  EXPECT_LE(hits, 3u);  // p ~ 1e-6
  s.UpdateProbability(h, BigUInt(uint64_t{9}), BigUInt(uint64_t{10}));
  const uint64_t trials = 50000;
  hits = 0;
  for (uint64_t t = 0; t < trials; ++t) hits += s.Sample(rng).size();
  EXPECT_LE(std::abs(BernoulliZScore(hits, trials, 0.9)), 4.5);
}

TEST(OdssTest, DynamicChurnKeepsMarginals) {
  OdssSampler s;
  RandomEngine rng(6);
  std::vector<uint64_t> handles;
  for (int step = 0; step < 5000; ++step) {
    if (handles.empty() || rng.NextBelow(100) < 60) {
      const uint64_t den = 1 + rng.NextBelow(1u << 12);
      const uint64_t num = 1 + rng.NextBelow(den);
      handles.push_back(s.Insert(step, BigUInt(num), BigUInt(den)));
    } else {
      const size_t idx = rng.NextBelow(handles.size());
      s.Erase(handles[idx]);
      handles[idx] = handles.back();
      handles.pop_back();
    }
  }
  EXPECT_EQ(s.size(), handles.size());
  // Spot-check a fresh item's marginal after the churn.
  const auto probe = s.Insert(999999, BigUInt(uint64_t{1}), BigUInt(uint64_t{3}));
  (void)probe;
  const uint64_t trials = 60000;
  uint64_t hits = 0;
  for (uint64_t t = 0; t < trials; ++t) {
    for (uint64_t payload : s.Sample(rng)) hits += payload == 999999;
  }
  EXPECT_LE(std::abs(BernoulliZScore(hits, trials, 1.0 / 3.0)), 4.5);
}

TEST(OdssTest, AgreesWithBucketJump) {
  // Identical instance, same marginals (different algorithms).
  RandomEngine pgen(7);
  OdssSampler odss;
  BucketJumpSampler jump;
  std::vector<double> probs;
  for (int i = 0; i < 60; ++i) {
    const uint64_t den = 2 + pgen.NextBelow(1u << 10);
    const uint64_t num = 1 + pgen.NextBelow(den - 1);
    odss.Insert(i, BigUInt(num), BigUInt(den));
    jump.Insert(i, BigUInt(num), BigUInt(den));
    probs.push_back(static_cast<double>(num) / den);
  }
  RandomEngine r1(8), r2(9);
  const uint64_t trials = 60000;
  std::vector<uint64_t> h1(60, 0), h2(60, 0);
  for (uint64_t t = 0; t < trials; ++t) {
    for (uint64_t p : odss.Sample(r1)) h1[p]++;
    for (uint64_t p : jump.Sample(r2)) h2[p]++;
  }
  for (int i = 0; i < 60; ++i) {
    EXPECT_LE(std::abs(BernoulliZScore(h1[i], trials, probs[i])), 4.5) << i;
    EXPECT_LE(std::abs(BernoulliZScore(h2[i], trials, probs[i])), 4.5) << i;
  }
}

TEST(OdssTest, PairwiseIndependenceWithinBucket) {
  OdssSampler s;
  s.Insert(0, BigUInt(uint64_t{1}), BigUInt(uint64_t{5}));
  s.Insert(1, BigUInt(uint64_t{1}), BigUInt(uint64_t{5}));
  for (int i = 2; i < 10; ++i) {
    s.Insert(i, BigUInt(uint64_t{1}), BigUInt(uint64_t{7}));
  }
  RandomEngine rng(10);
  const uint64_t trials = 150000;
  uint64_t a = 0, b = 0, joint = 0;
  for (uint64_t t = 0; t < trials; ++t) {
    bool ia = false, ib = false;
    for (uint64_t p : s.Sample(rng)) {
      ia |= p == 0;
      ib |= p == 1;
    }
    a += ia;
    b += ib;
    joint += ia && ib;
  }
  EXPECT_LE(std::abs(BernoulliZScore(a, trials, 0.2)), 4.5);
  EXPECT_LE(std::abs(BernoulliZScore(b, trials, 0.2)), 4.5);
  EXPECT_LE(std::abs(BernoulliZScore(joint, trials, 0.04)), 4.5);
}

}  // namespace
}  // namespace dpss
