// Tests for the Fact 2.1 structure: behavioural equivalence with an ordered
// std::set reference under randomized update/query sequences, across
// universe sizes.

#include "wordram/bitmap_sorted_list.h"

#include <set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace dpss {
namespace {

TEST(BitmapSortedListTest, EmptyQueries) {
  BitmapSortedList s(100);
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Size(), 0);
  EXPECT_EQ(s.Min(), -1);
  EXPECT_EQ(s.Max(), -1);
  EXPECT_EQ(s.Floor(99), -1);
  EXPECT_EQ(s.Ceiling(0), -1);
  EXPECT_EQ(s.Next(50), -1);
  EXPECT_EQ(s.Prev(50), -1);
}

TEST(BitmapSortedListTest, SingleElement) {
  BitmapSortedList s(200);
  s.Insert(77);
  EXPECT_FALSE(s.Empty());
  EXPECT_EQ(s.Size(), 1);
  EXPECT_TRUE(s.Contains(77));
  EXPECT_EQ(s.Min(), 77);
  EXPECT_EQ(s.Max(), 77);
  EXPECT_EQ(s.Floor(77), 77);
  EXPECT_EQ(s.Floor(76), -1);
  EXPECT_EQ(s.Ceiling(77), 77);
  EXPECT_EQ(s.Ceiling(78), -1);
  EXPECT_EQ(s.Prev(77), -1);
  EXPECT_EQ(s.Next(77), -1);
  EXPECT_EQ(s.Next(0), 77);
  EXPECT_EQ(s.Prev(199), 77);
  s.Erase(77);
  EXPECT_TRUE(s.Empty());
}

TEST(BitmapSortedListTest, IdempotentUpdates) {
  BitmapSortedList s(64);
  s.Insert(3);
  s.Insert(3);
  EXPECT_EQ(s.Size(), 1);
  s.Erase(3);
  s.Erase(3);
  EXPECT_EQ(s.Size(), 0);
}

TEST(BitmapSortedListTest, WordBoundaries) {
  BitmapSortedList s(256);
  for (int q : {0, 63, 64, 127, 128, 191, 192, 255}) s.Insert(q);
  EXPECT_EQ(s.Min(), 0);
  EXPECT_EQ(s.Max(), 255);
  EXPECT_EQ(s.Next(0), 63);
  EXPECT_EQ(s.Next(63), 64);
  EXPECT_EQ(s.Next(64), 127);
  EXPECT_EQ(s.Prev(128), 127);
  EXPECT_EQ(s.Prev(192), 191);
  EXPECT_EQ(s.Floor(100), 64);
  EXPECT_EQ(s.Ceiling(129), 191);
}

class BitmapSortedListParamTest : public ::testing::TestWithParam<int> {};

TEST_P(BitmapSortedListParamTest, MatchesSetReference) {
  const int universe = GetParam();
  BitmapSortedList s(universe);
  std::set<int> ref;
  RandomEngine rng(1000 + universe);

  for (int step = 0; step < 5000; ++step) {
    const int q = static_cast<int>(rng.NextBelow(universe));
    const int op = static_cast<int>(rng.NextBelow(4));
    switch (op) {
      case 0:
        s.Insert(q);
        ref.insert(q);
        break;
      case 1:
        s.Erase(q);
        ref.erase(q);
        break;
      case 2: {  // Floor
        auto it = ref.upper_bound(q);
        const int expected = it == ref.begin() ? -1 : *std::prev(it);
        ASSERT_EQ(s.Floor(q), expected) << "universe=" << universe;
        break;
      }
      default: {  // Ceiling
        auto it = ref.lower_bound(q);
        const int expected = it == ref.end() ? -1 : *it;
        ASSERT_EQ(s.Ceiling(q), expected) << "universe=" << universe;
        break;
      }
    }
    ASSERT_EQ(s.Size(), static_cast<int>(ref.size()));
    ASSERT_EQ(s.Empty(), ref.empty());
    ASSERT_EQ(s.Min(), ref.empty() ? -1 : *ref.begin());
    ASSERT_EQ(s.Max(), ref.empty() ? -1 : *ref.rbegin());
  }
}

INSTANTIATE_TEST_SUITE_P(Universes, BitmapSortedListParamTest,
                         ::testing::Values(1, 2, 7, 63, 64, 65, 100, 128, 192,
                                           255, 256));

}  // namespace
}  // namespace dpss
