// Tests for the one-level BG-Str: bucketing by weight exponent, group
// activation/deactivation, swap-with-last relocation callbacks, and the
// collection helpers, mirrored against a reference implementation.

#include "core/bucket_structure.h"

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace dpss {
namespace {

class LocationRecorder : public BucketStructure::RelocationListener {
 public:
  void OnRelocate(uint64_t handle, BucketStructure::Location loc) override {
    locations[handle] = loc;
  }
  std::map<uint64_t, BucketStructure::Location> locations;
};

TEST(BucketStructureTest, BucketIndexFollowsWeight) {
  LocationRecorder rec;
  BucketStructure bs(/*universe=*/64, /*group_width=*/4, &rec);
  EXPECT_EQ(bs.Insert(1, Weight(1, 0)).bucket, 0);
  EXPECT_EQ(bs.Insert(2, Weight(2, 0)).bucket, 1);
  EXPECT_EQ(bs.Insert(3, Weight(3, 0)).bucket, 1);
  EXPECT_EQ(bs.Insert(4, Weight(4, 0)).bucket, 2);
  EXPECT_EQ(bs.Insert(5, Weight(1023, 0)).bucket, 9);
  EXPECT_EQ(bs.Insert(6, Weight(1024, 0)).bucket, 10);
  EXPECT_EQ(bs.Insert(7, Weight(3, 4)).bucket, 5);  // 3·2^4 = 48
  EXPECT_EQ(bs.size(), 7u);
}

TEST(BucketStructureTest, GroupActivation) {
  LocationRecorder rec;
  BucketStructure bs(64, 4, &rec);
  EXPECT_TRUE(bs.nonempty_groups().Empty());
  auto loc = bs.Insert(1, Weight(100, 0));  // bucket 6, group 1
  EXPECT_TRUE(bs.nonempty_groups().Contains(1));
  EXPECT_FALSE(bs.nonempty_groups().Contains(0));
  bs.Insert(2, Weight(70, 0));  // bucket 6 again
  bs.Erase(loc);
  EXPECT_TRUE(bs.nonempty_groups().Contains(1));  // item 2 remains
  bs.Erase(rec.locations[2]);
  EXPECT_FALSE(bs.nonempty_groups().Contains(1));
  EXPECT_TRUE(bs.Empty());
}

TEST(BucketStructureTest, GroupStaysActiveViaSiblingBucket) {
  LocationRecorder rec;
  BucketStructure bs(64, 4, &rec);
  auto l1 = bs.Insert(1, Weight(16, 0));  // bucket 4, group 1
  bs.Insert(2, Weight(128, 0));           // bucket 7, group 1
  bs.Erase(l1);
  EXPECT_FALSE(bs.nonempty_buckets().Contains(4));
  EXPECT_TRUE(bs.nonempty_groups().Contains(1));
}

TEST(BucketStructureTest, SwapPopRelocationNotifies) {
  LocationRecorder rec;
  BucketStructure bs(64, 4, &rec);
  auto l1 = bs.Insert(1, Weight(5, 0));  // bucket 2, pos 0
  bs.Insert(2, Weight(6, 0));            // bucket 2, pos 1
  bs.Insert(3, Weight(7, 0));            // bucket 2, pos 2
  bs.Erase(l1);                          // item 3 swaps into pos 0
  ASSERT_TRUE(rec.locations.count(3));
  EXPECT_EQ(rec.locations[3].bucket, 2);
  EXPECT_EQ(rec.locations[3].pos, 0u);
  EXPECT_EQ(bs.EntryAt(rec.locations[3]).handle, 3u);
  // Erasing the tail entry relocates nothing new.
  rec.locations.clear();
  bs.Erase(BucketStructure::Location{2, 1});  // item 2
  EXPECT_TRUE(rec.locations.empty());
  EXPECT_EQ(bs.BucketSize(2), 1u);
}

TEST(BucketStructureTest, CollectUpToAndFrom) {
  LocationRecorder rec;
  BucketStructure bs(64, 4, &rec);
  bs.Insert(1, Weight(1, 0));    // bucket 0
  bs.Insert(2, Weight(8, 0));    // bucket 3
  bs.Insert(3, Weight(9, 0));    // bucket 3
  bs.Insert(4, Weight(1 << 20, 0));  // bucket 20

  std::vector<BucketStructure::Entry> low;
  bs.CollectUpTo(3, &low);
  ASSERT_EQ(low.size(), 3u);
  EXPECT_EQ(low[0].handle, 1u);

  std::vector<BucketStructure::Entry> high;
  bs.CollectFrom(4, &high);
  ASSERT_EQ(high.size(), 1u);
  EXPECT_EQ(high[0].handle, 4u);

  std::vector<BucketStructure::Entry> all;
  bs.CollectUpTo(63, &all);
  EXPECT_EQ(all.size(), 4u);

  std::vector<BucketStructure::Entry> none;
  bs.CollectUpTo(-1, &none);
  bs.CollectFrom(64, &none);
  EXPECT_TRUE(none.empty());
}

TEST(BucketStructureTest, RandomizedMirror) {
  LocationRecorder rec;
  BucketStructure bs(128, 8, &rec);
  // Reference: handle -> weight.
  std::map<uint64_t, Weight> ref;
  RandomEngine rng(42);
  uint64_t next_handle = 0;

  for (int step = 0; step < 20000; ++step) {
    const bool insert = ref.empty() || rng.NextBelow(100) < 55;
    if (insert) {
      const uint64_t mult = 1 + rng.NextBelow((uint64_t{1} << 40) - 1);
      const uint32_t exp = static_cast<uint32_t>(rng.NextBelow(60));
      const uint64_t h = next_handle++;
      const Weight w(mult, exp);
      rec.locations[h] = bs.Insert(h, w);
      ref[h] = w;
    } else {
      // Erase a pseudo-random existing handle.
      auto it = ref.lower_bound(rng.NextBelow(next_handle));
      if (it == ref.end()) it = ref.begin();
      bs.Erase(rec.locations[it->first]);
      rec.locations.erase(it->first);
      ref.erase(it);
    }
    ASSERT_EQ(bs.size(), ref.size());
  }

  // Full consistency sweep.
  std::map<int, int> bucket_counts;
  for (const auto& [h, w] : ref) {
    const auto loc = rec.locations[h];
    const auto& e = bs.EntryAt(loc);
    ASSERT_EQ(e.handle, h);
    ASSERT_TRUE(e.weight == w);
    ASSERT_EQ(loc.bucket, w.BucketIndex());
    bucket_counts[loc.bucket]++;
  }
  for (int b = 0; b < 128; ++b) {
    const int expected = bucket_counts.count(b) ? bucket_counts[b] : 0;
    ASSERT_EQ(bs.BucketSize(b), static_cast<uint64_t>(expected));
    ASSERT_EQ(bs.nonempty_buckets().Contains(b), expected > 0);
  }
}

TEST(BucketStructureTest, SlabExtentsAreCacheLineAligned) {
  // Every bucket extent must start on a 64-byte boundary so the four-entry
  // packing actually lines up with cache lines.
  LocationRecorder rec;
  BucketStructure bs(128, 8, &rec);
  RandomEngine rng(7);
  for (uint64_t h = 0; h < 4096; ++h) {
    const uint64_t mult = 1 + rng.NextBelow((uint64_t{1} << 50) - 1);
    bs.Insert(h, Weight(mult, static_cast<uint32_t>(rng.NextBelow(40))));
  }
  for (int b = 0; b < 128; ++b) {
    if (bs.BucketSize(b) == 0) continue;
    const auto view = bs.Bucket(b);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(view.data()) % 64, 0u)
        << "bucket " << b;
  }
}

TEST(BucketStructureTest, ViewIterationMatchesCollect) {
  LocationRecorder rec;
  BucketStructure bs(128, 8, &rec);
  RandomEngine rng(8);
  for (uint64_t h = 0; h < 2000; ++h) {
    const uint64_t mult = 1 + rng.NextBelow((uint64_t{1} << 30) - 1);
    bs.Insert(h, Weight(mult, static_cast<uint32_t>(rng.NextBelow(20))));
  }
  std::vector<BucketStructure::Entry> collected;
  bs.CollectUpTo(127, &collected);

  std::vector<BucketStructure::Entry> via_view;
  std::vector<uint64_t> via_append;
  for (int b = 0; b < 128; ++b) {
    const BucketStructure::BucketView view = bs.Bucket(b);
    ASSERT_EQ(view.size(), bs.BucketSize(b));
    for (uint32_t i = 0; i < view.size(); ++i) {
      via_view.push_back(view.EntryAt(i));
      // The packed mult + implied exponent must reconstruct the weight.
      ASSERT_TRUE(view.WeightAt(i) == view.EntryAt(i).weight);
      ASSERT_EQ(view.WeightAt(i).BucketIndex(), b);
      ASSERT_EQ(view[i].handle, view.EntryAt(i).handle);
    }
  }
  bs.AppendHandlesUpTo(127, &via_append);

  ASSERT_EQ(via_view.size(), collected.size());
  ASSERT_EQ(via_append.size(), collected.size());
  for (size_t i = 0; i < collected.size(); ++i) {
    EXPECT_EQ(via_view[i].handle, collected[i].handle);
    EXPECT_TRUE(via_view[i].weight == collected[i].weight);
    EXPECT_EQ(via_append[i], collected[i].handle);
  }
}

TEST(BucketStructureTest, ExtentGrowthReusesFreedExtents) {
  LocationRecorder rec;
  BucketStructure bs(64, 4, &rec);
  // Fill one bucket past several extent doublings: each doubling parks the
  // outgrown extent on a free list.
  for (uint64_t h = 0; h < 100; ++h) bs.Insert(h, Weight(3, 2));
  const auto grown = bs.slab_stats();
  EXPECT_EQ(grown.live_bytes, 100 * sizeof(BucketStructure::PackedEntry));
  EXPECT_GT(grown.free_bytes, 0u) << "outgrown extents should be free-listed";
  EXPECT_GE(grown.capacity_bytes, grown.extent_bytes + grown.free_bytes);
  EXPECT_LE(grown.Occupancy(), 1.0);
  EXPECT_GE(grown.Occupancy(), 0.5) << "power-of-two extents: >= half full";
  EXPECT_GE(grown.Fragmentation(), 0.0);
  EXPECT_LE(grown.Fragmentation(), 1.0);

  // A new bucket of a matching size class must reuse a freed extent rather
  // than bump the arena.
  const size_t free_before = grown.free_bytes;
  std::vector<BucketStructure::Location> small;
  // Weight(1, 0) lives in bucket 0, away from the Weight(3, 2) bucket above.
  for (uint64_t h = 100; h < 104; ++h)
    small.push_back(bs.Insert(h, Weight(1, 0)));
  EXPECT_LT(bs.slab_stats().free_bytes, free_before)
      << "expected the new bucket to pop a free-listed extent";

  // Draining a bucket keeps its extent (alloc-free churn): stats unchanged
  // except live bytes.
  const size_t extent_before = bs.slab_stats().extent_bytes;
  for (auto it = small.rbegin(); it != small.rend(); ++it) bs.Erase(*it);
  EXPECT_EQ(bs.BucketSize(Weight(1, 0).BucketIndex()), 0u);
  EXPECT_EQ(bs.slab_stats().extent_bytes, extent_before);
  EXPECT_GT(bs.MemoryBytes(), 0u);
}

TEST(WeightTest, Basics) {
  EXPECT_TRUE(Weight().IsZero());
  EXPECT_FALSE(Weight(1, 0).IsZero());
  EXPECT_EQ(Weight(1, 0).BucketIndex(), 0);
  EXPECT_EQ(Weight(1, 10).BucketIndex(), 10);
  EXPECT_EQ(Weight(7, 3).BucketIndex(), 5);  // 56 in [32, 64)
  EXPECT_EQ(Weight(5, 0).ToBigUInt(), BigUInt(uint64_t{5}));
  EXPECT_EQ(Weight(5, 64).ToBigUInt(), BigUInt(uint64_t{5}) << 64);
  EXPECT_DOUBLE_EQ(Weight(3, 2).ToDouble(), 12.0);
  EXPECT_GT(Weight(1, 200).ToDouble(), 1e59);
}

}  // namespace
}  // namespace dpss
