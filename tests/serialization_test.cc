// Tests for DpssSampler snapshots: round-trip fidelity (ids, weights,
// totals, distribution), dead-slot preservation, corruption rejection, and
// post-load dynamics.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dpss_sampler.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace dpss {
namespace {

using testing_util::BernoulliZScore;

TEST(SerializationTest, EmptyRoundTrip) {
  DpssSampler s(1);
  std::string bytes;
  s.Serialize(&bytes);
  DpssSampler loaded(2);
  ASSERT_TRUE(DpssSampler::Deserialize(bytes, DpssSampler::Options{}, &loaded).ok());
  EXPECT_TRUE(loaded.empty());
  loaded.CheckInvariants();
}

TEST(SerializationTest, PreservesIdsWeightsAndTotals) {
  DpssSampler s(3);
  const auto a = s.Insert(10);
  const auto b = s.Insert(0);
  const auto c = s.InsertWeight(Weight(3, 40));
  const auto d = s.Insert(999);
  s.Erase(b);  // leave a hole

  std::string bytes;
  s.Serialize(&bytes);
  DpssSampler loaded(4);
  ASSERT_TRUE(DpssSampler::Deserialize(bytes, DpssSampler::Options{}, &loaded).ok());

  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_TRUE(loaded.Contains(a));
  EXPECT_FALSE(loaded.Contains(b));
  EXPECT_TRUE(loaded.Contains(c));
  EXPECT_TRUE(loaded.Contains(d));
  EXPECT_TRUE(loaded.GetWeight(c) == Weight(3, 40));
  EXPECT_EQ(loaded.total_weight(), s.total_weight());
  loaded.CheckInvariants();
}

TEST(SerializationTest, LoadedDistributionIsExact) {
  RandomEngine wgen(5);
  std::vector<uint64_t> weights;
  for (int i = 0; i < 60; ++i) weights.push_back(1 + wgen.NextBelow(1u << 14));
  DpssSampler s(weights, 6);
  std::string bytes;
  s.Serialize(&bytes);
  DpssSampler loaded(7);
  ASSERT_TRUE(DpssSampler::Deserialize(bytes, DpssSampler::Options{}, &loaded).ok());

  BigUInt wnum, wden;
  loaded.ComputeW({1, 1}, {17, 1}, &wnum, &wden);
  const double inv_w = BigRational(wden, wnum).ToDouble();
  RandomEngine rng(8);
  const uint64_t trials = 50000;
  std::vector<uint64_t> hits(weights.size(), 0);
  for (uint64_t t = 0; t < trials; ++t) {
    for (auto id : loaded.Sample({1, 1}, {17, 1}, rng)) hits[id]++;
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    const double p = std::min(1.0, static_cast<double>(weights[i]) * inv_w);
    EXPECT_LE(std::abs(BernoulliZScore(hits[i], trials, p)), 4.75) << i;
  }
}

TEST(SerializationTest, UpdatesAfterLoadWork) {
  DpssSampler s(9);
  std::vector<DpssSampler::ItemId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(s.Insert(1 + i));
  s.Erase(ids[50]);
  std::string bytes;
  s.Serialize(&bytes);
  DpssSampler loaded(10);
  ASSERT_TRUE(DpssSampler::Deserialize(bytes, DpssSampler::Options{}, &loaded).ok());
  // Freed slots are reusable after load; the pre-snapshot stale id stays
  // stale because slot generations are part of the snapshot.
  const auto reused = loaded.Insert(7);
  EXPECT_EQ(DpssSampler::SlotIndexOf(reused), DpssSampler::SlotIndexOf(ids[50]));
  EXPECT_NE(reused, ids[50]);
  EXPECT_FALSE(loaded.Contains(ids[50]));
  EXPECT_TRUE(loaded.Contains(reused));
  for (int i = 0; i < 500; ++i) loaded.Insert(3 + i);
  loaded.Erase(ids[0]);
  loaded.CheckInvariants();
  EXPECT_EQ(loaded.size(), 100u + 500u - 1u);
}

TEST(SerializationTest, RejectsCorruptedSnapshots) {
  DpssSampler s(11);
  s.Insert(5);
  std::string bytes;
  s.Serialize(&bytes);

  const auto code = [](const std::string& snapshot, DpssSampler* sink) {
    return DpssSampler::Deserialize(snapshot, DpssSampler::Options{}, sink)
        .code();
  };
  DpssSampler sink(12);
  // Truncated.
  EXPECT_EQ(code(bytes.substr(0, bytes.size() - 3), &sink),
            StatusCode::kBadSnapshot);
  // Bad magic.
  std::string bad_magic = bytes;
  bad_magic[0] = static_cast<char>(bad_magic[0] + 1);
  EXPECT_EQ(code(bad_magic, &sink), StatusCode::kBadSnapshot);
  // Garbage liveness flag.
  std::string bad_flag = bytes;
  bad_flag[16] = 9;
  EXPECT_EQ(code(bad_flag, &sink), StatusCode::kBadSnapshot);
  // Empty input.
  EXPECT_EQ(code("", &sink), StatusCode::kBadSnapshot);
  // The sink must still be usable (untouched by failed loads).
  sink.Insert(1);
  sink.CheckInvariants();
}

// Fuzz-style robustness: Deserialize must return kBadSnapshot or succeed —
// never abort or read out of bounds — on arbitrarily truncated or
// bit-flipped snapshots. Accepted mutants (flips that only touch dead-slot
// padding or yield a different-but-valid item set) must produce a sampler
// whose own invariant audit passes.
TEST(SerializationTest, FuzzedSnapshotsNeverAbort) {
  DpssSampler s(21);
  std::vector<DpssSampler::ItemId> ids;
  for (int i = 0; i < 24; ++i) ids.push_back(s.Insert(1 + 13 * i));
  ids.push_back(s.InsertWeight(Weight(3, 120)));  // a float weight
  ids.push_back(s.Insert(0));                     // a parked item
  s.Erase(ids[5]);                                // a dead slot
  std::string bytes;
  s.Serialize(&bytes);

  RandomEngine rng(22);
  int accepted = 0, rejected = 0;
  // Every truncation length (whole-word and ragged).
  for (size_t len = 0; len < bytes.size(); len += 1 + len % 7) {
    DpssSampler sink(23);
    const Status st = DpssSampler::Deserialize(bytes.substr(0, len),
                                               DpssSampler::Options{}, &sink);
    EXPECT_EQ(st.code(), StatusCode::kBadSnapshot) << "len " << len;
  }
  // Random single- and multi-bit flips.
  for (int round = 0; round < 400; ++round) {
    std::string mutant = bytes;
    const int flips = 1 + static_cast<int>(rng.NextBelow(3));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBelow(mutant.size());
      mutant[pos] = static_cast<char>(
          static_cast<unsigned char>(mutant[pos]) ^
          (1u << rng.NextBelow(8)));
    }
    DpssSampler sink(24);
    const Status st =
        DpssSampler::Deserialize(mutant, DpssSampler::Options{}, &sink);
    if (st.ok()) {
      ++accepted;
      sink.CheckInvariants();
    } else {
      ++rejected;
      EXPECT_EQ(st.code(), StatusCode::kBadSnapshot);
    }
  }
  // The corpus must actually exercise both outcomes (magic/header flips
  // reject; generation-byte flips of dead slots accept).
  EXPECT_GT(accepted, 0);
  EXPECT_GT(rejected, 0);
}

TEST(SerializationTest, DeamortizedOptionsApplyToLoadedSampler) {
  DpssSampler s(13);
  for (int i = 0; i < 40; ++i) s.Insert(2 + i);
  std::string bytes;
  s.Serialize(&bytes);
  DpssSampler::Options o;
  o.seed = 14;
  o.deamortized_rebuild = true;
  DpssSampler loaded(15);
  ASSERT_TRUE(DpssSampler::Deserialize(bytes, o, &loaded).ok());
  // Growth after load must use incremental migrations.
  bool saw_migration = false;
  for (int i = 0; i < 200; ++i) {
    loaded.Insert(9 + i);
    saw_migration |= loaded.migration_in_progress();
  }
  EXPECT_TRUE(saw_migration);
  loaded.CheckInvariants();
}

}  // namespace
}  // namespace dpss
