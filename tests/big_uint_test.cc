// Unit and property tests for BigUInt: cross-checks against native
// 128-bit arithmetic, algebraic identities on random multi-word values,
// and the division invariant a = q*b + r with r < b.

#include "bigint/big_uint.h"

#include <cstdint>

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "util/random.h"

namespace dpss {
namespace {

using testing_util::RandomValue;
using u128 = unsigned __int128;

TEST(BigUIntTest, ZeroBasics) {
  BigUInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.WordCount(), 0);
  EXPECT_EQ(z.BitLength(), 0);
  EXPECT_EQ(z.ToHexString(), "0");
  EXPECT_EQ(z.ToDecimalString(), "0");
  EXPECT_EQ(z.ToDouble(), 0.0);
  EXPECT_EQ(BigUInt::Compare(z, BigUInt()), 0);
}

TEST(BigUIntTest, SingleWordConstruction) {
  BigUInt v(uint64_t{42});
  EXPECT_FALSE(v.IsZero());
  EXPECT_EQ(v.WordCount(), 1);
  EXPECT_EQ(v.ToU64(), 42u);
  EXPECT_EQ(v.BitLength(), 6);
  EXPECT_EQ(v.ToDecimalString(), "42");
  EXPECT_EQ(v.ToHexString(), "2a");
}

TEST(BigUIntTest, FromU128RoundTrip) {
  const u128 x = (static_cast<u128>(0x123456789abcdef0ULL) << 64) |
                 0xfedcba9876543210ULL;
  BigUInt v = BigUInt::FromU128(x);
  EXPECT_EQ(v.WordCount(), 2);
  EXPECT_EQ(v.ToU128(), x);
  EXPECT_EQ(v.ToHexString(), "123456789abcdef0fedcba9876543210");
}

TEST(BigUIntTest, PowerOfTwo) {
  for (int k : {0, 1, 63, 64, 65, 127, 128, 200}) {
    BigUInt p = BigUInt::PowerOfTwo(k);
    EXPECT_EQ(p.BitLength(), k + 1) << k;
    EXPECT_TRUE(p.Bit(k));
    for (int j = 0; j < k; ++j) EXPECT_FALSE(p.Bit(j)) << k << " " << j;
  }
}

TEST(BigUIntTest, AddMatchesU128) {
  RandomEngine rng(1);
  for (int iter = 0; iter < 2000; ++iter) {
    const u128 a = (static_cast<u128>(rng.NextWord()) << 63) | rng.NextBits(63);
    const u128 b = (static_cast<u128>(rng.NextWord()) << 63) | rng.NextBits(63);
    EXPECT_EQ(BigUInt::Add(BigUInt::FromU128(a), BigUInt::FromU128(b)),
              BigUInt::FromU128(a + b));
  }
}

TEST(BigUIntTest, SubMatchesU128) {
  RandomEngine rng(2);
  for (int iter = 0; iter < 2000; ++iter) {
    u128 a = (static_cast<u128>(rng.NextWord()) << 64) | rng.NextWord();
    u128 b = (static_cast<u128>(rng.NextWord()) << 64) | rng.NextWord();
    if (a < b) std::swap(a, b);
    EXPECT_EQ(BigUInt::Sub(BigUInt::FromU128(a), BigUInt::FromU128(b)),
              BigUInt::FromU128(a - b));
  }
}

TEST(BigUIntTest, MulMatchesU128) {
  RandomEngine rng(3);
  for (int iter = 0; iter < 2000; ++iter) {
    const uint64_t a = rng.NextWord();
    const uint64_t b = rng.NextWord();
    EXPECT_EQ(BigUInt::Mul(BigUInt(a), BigUInt(b)),
              BigUInt::FromU128(static_cast<u128>(a) * b));
  }
}

TEST(BigUIntTest, AdditionCommutesAndAssociates) {
  RandomEngine rng(4);
  for (int iter = 0; iter < 300; ++iter) {
    const BigUInt a = RandomValue(rng, 1 + static_cast<int>(rng.NextBelow(300)));
    const BigUInt b = RandomValue(rng, 1 + static_cast<int>(rng.NextBelow(300)));
    const BigUInt c = RandomValue(rng, 1 + static_cast<int>(rng.NextBelow(300)));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(BigUInt::Sub(a + b, b), a);
  }
}

TEST(BigUIntTest, MultiplicationDistributes) {
  RandomEngine rng(5);
  for (int iter = 0; iter < 300; ++iter) {
    const BigUInt a = RandomValue(rng, 1 + static_cast<int>(rng.NextBelow(200)));
    const BigUInt b = RandomValue(rng, 1 + static_cast<int>(rng.NextBelow(200)));
    const BigUInt c = RandomValue(rng, 1 + static_cast<int>(rng.NextBelow(200)));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * b, b * a);
  }
}

TEST(BigUIntTest, MulU64MatchesMul) {
  RandomEngine rng(6);
  for (int iter = 0; iter < 500; ++iter) {
    const BigUInt a = RandomValue(rng, 1 + static_cast<int>(rng.NextBelow(260)));
    const uint64_t b = rng.NextWord();
    EXPECT_EQ(BigUInt::MulU64(a, b), a * BigUInt(b));
  }
}

TEST(BigUIntTest, ShiftsInvertAndScale) {
  RandomEngine rng(7);
  for (int iter = 0; iter < 500; ++iter) {
    const BigUInt a = RandomValue(rng, 1 + static_cast<int>(rng.NextBelow(300)));
    const int k = static_cast<int>(rng.NextBelow(200));
    EXPECT_EQ((a << k) >> k, a);
    EXPECT_EQ(a << k, a * BigUInt::PowerOfTwo(k));
  }
}

TEST(BigUIntTest, ShiftRightDropsLowBits) {
  BigUInt v = BigUInt::FromU128((static_cast<u128>(0xffULL) << 64) | 1u);
  EXPECT_EQ((v >> 64).ToU64(), 0xffu);
  EXPECT_EQ((v >> 200).WordCount(), 0);
}

TEST(BigUIntTest, DivModInvariantRandom) {
  RandomEngine rng(8);
  for (int iter = 0; iter < 1500; ++iter) {
    const int abits = 1 + static_cast<int>(rng.NextBelow(380));
    const int bbits = 1 + static_cast<int>(rng.NextBelow(250));
    const BigUInt a = RandomValue(rng, abits);
    const BigUInt b = RandomValue(rng, bbits);
    auto [q, r] = BigUInt::DivMod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(BigUInt::Compare(r, b), 0);
  }
}

TEST(BigUIntTest, DivModMatchesU128) {
  RandomEngine rng(9);
  for (int iter = 0; iter < 2000; ++iter) {
    const u128 a = (static_cast<u128>(rng.NextWord()) << 64) | rng.NextWord();
    u128 b = (static_cast<u128>(rng.NextBits(40)) << 64) | rng.NextWord();
    if (b == 0) b = 1;
    auto [q, r] = BigUInt::DivMod(BigUInt::FromU128(a), BigUInt::FromU128(b));
    EXPECT_EQ(q, BigUInt::FromU128(a / b));
    EXPECT_EQ(r, BigUInt::FromU128(a % b));
  }
}

TEST(BigUIntTest, DivModKnuthAddBackPath) {
  // A divisor of the form base/2 exercises the qhat correction logic.
  BigUInt a = BigUInt::PowerOfTwo(192) - BigUInt(uint64_t{1});
  BigUInt b = BigUInt::PowerOfTwo(127) + BigUInt(uint64_t{1});
  auto [q, r] = BigUInt::DivMod(a, b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(BigUInt::Compare(r, b), 0);
}

TEST(BigUIntTest, DivByOneAndSelf) {
  RandomEngine rng(10);
  for (int iter = 0; iter < 200; ++iter) {
    const BigUInt a = RandomValue(rng, 1 + static_cast<int>(rng.NextBelow(300)));
    EXPECT_EQ(BigUInt::Div(a, BigUInt(uint64_t{1})), a);
    EXPECT_EQ(BigUInt::Div(a, a), BigUInt(uint64_t{1}));
    EXPECT_TRUE(BigUInt::Mod(a, a).IsZero());
  }
}

TEST(BigUIntTest, IncrementCarriesAcrossWords) {
  BigUInt v = BigUInt::PowerOfTwo(128) - BigUInt(uint64_t{1});
  v.Increment();
  EXPECT_EQ(v, BigUInt::PowerOfTwo(128));
  BigUInt z;
  z.Increment();
  EXPECT_EQ(z, BigUInt(uint64_t{1}));
}

TEST(BigUIntTest, CompareOrdersByValue) {
  RandomEngine rng(11);
  for (int iter = 0; iter < 500; ++iter) {
    const u128 a = (static_cast<u128>(rng.NextWord()) << 64) | rng.NextWord();
    const u128 b = (static_cast<u128>(rng.NextWord()) << 64) | rng.NextWord();
    const int cmp = BigUInt::Compare(BigUInt::FromU128(a), BigUInt::FromU128(b));
    EXPECT_EQ(cmp < 0, a < b);
    EXPECT_EQ(cmp == 0, a == b);
  }
}

TEST(BigUIntTest, BitLengthAndBitAccess) {
  RandomEngine rng(12);
  for (int iter = 0; iter < 300; ++iter) {
    const int bits = 1 + static_cast<int>(rng.NextBelow(260));
    const BigUInt a = RandomValue(rng, bits);
    EXPECT_EQ(a.BitLength(), bits);
    EXPECT_TRUE(a.Bit(bits - 1));
    EXPECT_FALSE(a.Bit(bits));
    EXPECT_FALSE(a.Bit(bits + 100));
  }
}

TEST(BigUIntTest, CopyAndMoveSemantics) {
  const BigUInt big = BigUInt::PowerOfTwo(500) + BigUInt(uint64_t{7});
  BigUInt copy = big;
  EXPECT_EQ(copy, big);
  BigUInt moved = std::move(copy);
  EXPECT_EQ(moved, big);
  // Self-assignment.
  BigUInt self = big;
  self = self;
  EXPECT_EQ(self, big);
  // Assign small over large and vice versa.
  BigUInt small(uint64_t{3});
  BigUInt target = big;
  target = small;
  EXPECT_EQ(target, small);
  target = big;
  EXPECT_EQ(target, big);
}

TEST(BigUIntTest, DecimalStringMatchesReference) {
  EXPECT_EQ(BigUInt::PowerOfTwo(64).ToDecimalString(), "18446744073709551616");
  EXPECT_EQ(BigUInt::PowerOfTwo(128).ToDecimalString(),
            "340282366920938463463374607431768211456");
  EXPECT_EQ((BigUInt::PowerOfTwo(64) - BigUInt(uint64_t{1})).ToDecimalString(),
            "18446744073709551615");
}

TEST(BigUIntTest, ToDoubleApproximatesValue) {
  RandomEngine rng(13);
  for (int iter = 0; iter < 200; ++iter) {
    const int bits = 1 + static_cast<int>(rng.NextBelow(120));
    const BigUInt a = RandomValue(rng, bits);
    const double d = a.ToDouble();
    const double expected = std::ldexp(1.0, bits - 1);
    EXPECT_GE(d, expected * 0.999);
    EXPECT_LT(d, expected * 2.001);
  }
}

}  // namespace
}  // namespace dpss
