// Tests for the certified fixed-point approximations: enclosure soundness
// (true value inside [lo, hi]), certified width, and agreement with
// double-precision references across parameter sweeps.

#include "random/approx.h"

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "util/random.h"

namespace dpss {
namespace {

double PStarReference(double q, uint64_t n) {
  return (1.0 - std::pow(1.0 - q, static_cast<double>(n))) /
         (static_cast<double>(n) * q);
}

// Checks that `enc` encloses `value` (within double slack) and is narrow.
void ExpectEncloses(const FixedInterval& enc, double value, int target_bits) {
  const double lo = std::ldexp(enc.lo.ToDouble(), -enc.frac_bits);
  const double hi = std::ldexp(enc.hi.ToDouble(), -enc.frac_bits);
  const double slack = 1e-9 + std::abs(value) * 1e-9;
  EXPECT_LE(lo, value + slack);
  EXPECT_GE(hi, value - slack);
  EXPECT_LE(enc.WidthToDouble(), std::ldexp(1.0, -target_bits) * 1.0001);
}

TEST(ApproxRationalTest, EnclosesAndIsTight) {
  RandomEngine rng(1);
  for (int iter = 0; iter < 500; ++iter) {
    const uint64_t den = 1 + rng.NextBelow(1u << 20);
    const uint64_t num = rng.NextBelow(den + 1);
    const int t = 8 + static_cast<int>(rng.NextBelow(60));
    const FixedInterval enc = ApproxRational(BigUInt(num), BigUInt(den), t);
    ExpectEncloses(enc, static_cast<double>(num) / den, t);
  }
}

TEST(ApproxRationalTest, ExactDyadicHasZeroWidth) {
  const FixedInterval enc =
      ApproxRational(BigUInt(uint64_t{3}), BigUInt(uint64_t{8}), 30);
  EXPECT_EQ(BigUInt::Compare(enc.lo, enc.hi), 0);
}

TEST(ApproxPowTest, MatchesDoubleReference) {
  RandomEngine rng(2);
  for (int iter = 0; iter < 300; ++iter) {
    const uint64_t den = 2 + rng.NextBelow(1000000);
    const uint64_t num = rng.NextBelow(den);
    const uint64_t m = 1 + rng.NextBelow(1000);
    const int t = 20 + static_cast<int>(rng.NextBelow(40));
    const FixedInterval enc = ApproxPow(BigUInt(num), BigUInt(den), m, t);
    const double value =
        std::pow(static_cast<double>(num) / den, static_cast<double>(m));
    ExpectEncloses(enc, value, t);
  }
}

TEST(ApproxPowTest, EdgeCases) {
  // m == 0 -> exactly 1.
  FixedInterval one = ApproxPow(BigUInt(uint64_t{1}), BigUInt(uint64_t{3}), 0, 16);
  EXPECT_EQ(one.MidToDouble(), 1.0);
  EXPECT_EQ(one.WidthToDouble(), 0.0);
  // base 0 -> exactly 0.
  FixedInterval zero = ApproxPow(BigUInt(), BigUInt(uint64_t{3}), 5, 16);
  EXPECT_EQ(zero.MidToDouble(), 0.0);
  // base 1 -> exactly 1.
  FixedInterval unit =
      ApproxPow(BigUInt(uint64_t{7}), BigUInt(uint64_t{7}), 999, 16);
  EXPECT_EQ(unit.MidToDouble(), 1.0);
}

TEST(ApproxPowTest, HugeExponentUnderflowsToZero) {
  // (1/2)^(2^40) is far below 2^-64; the enclosure must be [0, ~2^-64].
  const FixedInterval enc = ApproxPow(BigUInt(uint64_t{1}), BigUInt(uint64_t{2}),
                                      uint64_t{1} << 40, 64);
  EXPECT_EQ(enc.lo.ToDouble(), 0.0);
  EXPECT_LE(enc.WidthToDouble(), std::ldexp(1.0, -64) * 1.0001);
}

TEST(ApproxPowTest, PrecisionScalesWithTarget) {
  for (int t : {8, 16, 32, 64, 128, 256}) {
    const FixedInterval enc =
        ApproxPow(BigUInt(uint64_t{2}), BigUInt(uint64_t{3}), 100, t);
    EXPECT_LE(enc.WidthToDouble(), std::ldexp(1.0, -t) * 1.0001) << t;
  }
}

TEST(ApproxPStarTest, MatchesDoubleReference) {
  RandomEngine rng(3);
  for (int iter = 0; iter < 300; ++iter) {
    const uint64_t n = 1 + rng.NextBelow(10000);
    // q <= 1/n: pick q = qnum / (n * scale) with qnum <= scale.
    const uint64_t scale = 1 + rng.NextBelow(1000);
    const uint64_t qnum = 1 + rng.NextBelow(scale);
    const BigUInt qden = BigUInt::MulU64(BigUInt(n), scale);
    const int t = 20 + static_cast<int>(rng.NextBelow(40));
    const FixedInterval enc = ApproxPStar(BigUInt(qnum), qden, n, t);
    const double q = static_cast<double>(qnum) /
                     (static_cast<double>(n) * static_cast<double>(scale));
    ExpectEncloses(enc, PStarReference(q, n), t);
  }
}

TEST(ApproxPStarTest, NEqualsOneIsExactlyOne) {
  const FixedInterval enc =
      ApproxPStar(BigUInt(uint64_t{1}), BigUInt(uint64_t{2}), 1, 32);
  EXPECT_EQ(enc.MidToDouble(), 1.0);
  EXPECT_EQ(enc.WidthToDouble(), 0.0);
}

TEST(ApproxPStarTest, BoundaryNQEqualsOne) {
  // q = 1/n exactly: p* = (1-(1-1/n)^n) * 1 -> ~1-1/e for large n.
  for (uint64_t n : {2ull, 3ull, 10ull, 1000ull, 1000000ull}) {
    const FixedInterval enc = ApproxPStar(BigUInt(uint64_t{1}), BigUInt(n), n, 40);
    ExpectEncloses(enc, PStarReference(1.0 / static_cast<double>(n), n), 40);
  }
}

TEST(ApproxPStarTest, ValueStaysInHalfOneRange) {
  RandomEngine rng(4);
  for (int iter = 0; iter < 200; ++iter) {
    const uint64_t n = 2 + rng.NextBelow(100000);
    const uint64_t qnum = 1;
    const uint64_t extra = 1 + rng.NextBelow(50);
    const BigUInt qden = BigUInt::MulU64(BigUInt(n), extra);
    const FixedInterval enc = ApproxPStar(BigUInt(qnum), qden, n, 40);
    EXPECT_GE(enc.MidToDouble(), 0.5 - 1e-6);
    EXPECT_LE(enc.MidToDouble(), 1.0 + 1e-6);
  }
}

TEST(ApproxHalfRecipPStarTest, MatchesDoubleReference) {
  RandomEngine rng(5);
  for (int iter = 0; iter < 300; ++iter) {
    const uint64_t n = 1 + rng.NextBelow(10000);
    const uint64_t scale = 1 + rng.NextBelow(1000);
    const uint64_t qnum = 1 + rng.NextBelow(scale);
    const BigUInt qden = BigUInt::MulU64(BigUInt(n), scale);
    const int t = 20 + static_cast<int>(rng.NextBelow(30));
    const FixedInterval enc = ApproxHalfRecipPStar(BigUInt(qnum), qden, n, t);
    const double q = static_cast<double>(qnum) /
                     (static_cast<double>(n) * static_cast<double>(scale));
    ExpectEncloses(enc, 1.0 / (2.0 * PStarReference(q, n)), t);
  }
}

TEST(ApproxHalfRecipPStarTest, IsAProbabilityInHalfOne) {
  RandomEngine rng(6);
  for (int iter = 0; iter < 200; ++iter) {
    const uint64_t n = 1 + rng.NextBelow(100000);
    const BigUInt qden = BigUInt::MulU64(BigUInt(n), 3);
    const FixedInterval enc =
        ApproxHalfRecipPStar(BigUInt(uint64_t{2}), qden, n, 40);
    EXPECT_GE(enc.MidToDouble(), 0.5 - 1e-6);
    EXPECT_LE(enc.MidToDouble(), 1.0 + 1e-6);
  }
}

}  // namespace
}  // namespace dpss
