// The replication chaos harness (docs/REPLICATION.md): the PR-5-style
// kill-point matrix applied to WAL shipping. A primary dies at every
// record boundary and at every byte inside a shipped segment (torn
// mid-ship); a replica that applied through the kill point is promoted
// and must serve exactly the acked prefix — while a stale, divergent, or
// never-bootstrapped replica must refuse promotion. One test runs the
// real thing: a forked primary server SIGKILLed under min_replica_acks=1
// traffic, with the in-process replica server promoted over the corpse.

#include <signal.h>
#include <stdlib.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "persist/env.h"
#include "persist/recovery.h"
#include "persist/wal.h"
#include "replica/replica_sampler.h"
#include "replica/replication_log.h"
#include "server/client.h"
#include "server/server.h"

namespace dpss {
namespace replica {
namespace {

using persist::DurableOptions;
using persist::DurableSampler;
using persist::MemEnv;
using persist::RecoveryManager;

using Shadow = std::map<ItemId, Weight>;

DurableOptions Opts(persist::Env* env) {
  DurableOptions opts;
  opts.backend = "halt";
  opts.spec.seed = 11;
  opts.env = env;
  return opts;
}

Shadow DumpShadow(const Sampler& s) {
  std::vector<ItemRecord> items;
  EXPECT_TRUE(s.DumpItems(&items).ok());
  Shadow out;
  for (const ItemRecord& rec : items) out[rec.id] = rec.weight;
  return out;
}

void ExpectShadowEq(const Shadow& got, const Shadow& want,
                    const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (const auto& [id, w] : want) {
    auto it = got.find(id);
    ASSERT_NE(it, got.end()) << context << ": id " << id << " missing";
    EXPECT_EQ(it->second.mult, w.mult) << context << ": id " << id;
    EXPECT_EQ(it->second.exp, w.exp) << context << ": id " << id;
  }
}

void ApplyToShadow(Shadow* shadow, std::span<const Op> ops,
                   const std::vector<ItemId>& inserted) {
  size_t next_insert = 0;
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::Kind::kInsert:
        (*shadow)[inserted[next_insert++]] = op.weight;
        break;
      case Op::Kind::kErase:
        shadow->erase(op.id);
        break;
      case Op::Kind::kSetWeight:
        (*shadow)[op.id] = op.weight;
        break;
    }
  }
}

// Opens a primary with 8 checkpointed base items, then logs `kRecords`
// scripted records covering every op kind. Returns the shadow after the
// base checkpoint in `shadows[0]` and after record r in `shadows[r]`.
struct ScriptedPrimary {
  std::unique_ptr<DurableSampler> primary;
  std::vector<Shadow> shadows;
  uint64_t epoch = 0;
  uint64_t first_seq = 0;  // seq of scripted record 1
};

constexpr int kRecords = 10;

ScriptedPrimary BuildScriptedPrimary(MemEnv* env) {
  ScriptedPrimary out;
  auto opened = RecoveryManager::Open("/prim", Opts(env));
  EXPECT_TRUE(opened.ok()) << opened.status().message();
  out.primary = std::move(*opened);
  DurableSampler* prim = out.primary.get();

  std::vector<ItemId> base;
  for (uint64_t i = 1; i <= 8; ++i) {
    auto id = prim->Insert(i);
    EXPECT_TRUE(id.ok());
    base.push_back(*id);
  }
  EXPECT_TRUE(prim->Checkpoint().ok());
  out.epoch = prim->epoch();
  out.first_seq = prim->wal_next_seq();
  out.shadows.push_back(DumpShadow(*prim));

  std::vector<ItemId> ids;  // ids born by the scripted records, in order
  const auto apply = [&](std::vector<Op> ops) {
    std::vector<ItemId> inserted;
    Status st = prim->ApplyBatch(ops, &inserted);
    EXPECT_TRUE(st.ok()) << st.message();
    Shadow next = out.shadows.back();
    ApplyToShadow(&next, ops, inserted);
    out.shadows.push_back(std::move(next));
    ids.insert(ids.end(), inserted.begin(), inserted.end());
  };
  apply({Op::Insert(uint64_t{3}), Op::Insert(uint64_t{4}),
         Op::Insert(uint64_t{5})});
  apply({Op::SetWeight(base[0], Weight{9, 0}),
         Op::SetWeight(base[1], Weight{2, 1})});
  apply({Op::Erase(base[2]), Op::Insert(uint64_t{7})});
  apply({Op::Insert(uint64_t{1}), Op::Insert(uint64_t{6})});
  apply({Op::Erase(ids[0])});
  apply({Op::SetWeight(ids[3], Weight{5, 2})});
  apply({Op::Erase(base[3]), Op::Erase(base[4])});
  apply({Op::Insert(uint64_t{2}), Op::Insert(uint64_t{2}),
         Op::Insert(uint64_t{3}), Op::Insert(uint64_t{3})});
  apply({Op::SetWeight(base[5], Weight{1, 3}), Op::Erase(ids[4])});
  apply({Op::Insert(uint64_t{10})});
  EXPECT_EQ(out.shadows.size(), static_cast<size_t>(kRecords) + 1);
  return out;
}

// Bootstraps a fresh replica off `log` in 64-byte snapshot chunks.
std::unique_ptr<ReplicaSampler> BootstrapReplica(
    MemEnv* env, const std::string& dir, ReplicationLog* log,
    uint64_t* subscriber_out) {
  auto created = ReplicaSampler::Create(env, dir, "halt", SamplerSpec{});
  EXPECT_TRUE(created.ok()) << created.status().message();
  std::unique_ptr<ReplicaSampler> replica = std::move(*created);
  auto sub = log->Subscribe(0, 0, 0);
  EXPECT_TRUE(sub.status.ok()) << sub.status.message();
  EXPECT_TRUE(sub.must_bootstrap);
  std::string snapshot;
  while (snapshot.size() < sub.snapshot_bytes) {
    auto chunk =
        log->ReadSnapshotChunk(sub.subscriber, sub.epoch, snapshot.size(), 64);
    EXPECT_TRUE(chunk.status.ok()) << chunk.status.message();
    EXPECT_FALSE(chunk.bytes.empty());
    snapshot.append(chunk.bytes);
  }
  Status st = replica->InstallSnapshot(sub.epoch, snapshot);
  EXPECT_TRUE(st.ok()) << st.message();
  *subscriber_out = sub.subscriber;
  return replica;
}

// The record-boundary kill matrix: for every k, ship exactly k scripted
// records to the replica (one record per pull, acked), kill the primary
// without ceremony, promote, and require the promoted state to be the
// acked prefix exactly — then prove the promoted sampler is a writable
// primary and the spent handle refuses further use.
TEST(ReplicaChaosTest, KillAtEveryRecordBoundaryPreservesAckedPrefix) {
  for (int k = 0; k <= kRecords; ++k) {
    SCOPED_TRACE("kill point k=" + std::to_string(k));
    MemEnv env;
    ScriptedPrimary sp = BuildScriptedPrimary(&env);
    ReplicationLog log(sp.primary.get());
    uint64_t subscriber = 0;
    auto replica = BootstrapReplica(&env, "/rep", &log, &subscriber);
    const uint64_t kill_seq = sp.first_seq - 1 + static_cast<uint64_t>(k);

    // max_bytes=1 clamps to "at least one whole record", so each pull
    // ships exactly one record — the finest-grained ack cadence.
    while (replica->applied_seq() < kill_seq) {
      auto seg = log.ReadSegment(subscriber, sp.epoch,
                                 replica->applied_seq() + 1, 1);
      ASSERT_TRUE(seg.status.ok()) << seg.status.message();
      ASSERT_FALSE(seg.must_bootstrap);
      ASSERT_FALSE(seg.bytes.empty());
      ASSERT_TRUE(replica->ApplySegment(sp.epoch, seg.bytes).ok());
    }
    // A pull acks "applied through from_seq - 1": one more (possibly
    // empty) pull tells the primary the replica holds the kill point.
    auto ack = log.ReadSegment(subscriber, sp.epoch, kill_seq + 1, 1);
    ASSERT_TRUE(ack.status.ok());
    EXPECT_EQ(log.AckCount(sp.epoch, kill_seq), 1)
        << "the acked-at-min_replica_acks=1 floor is exactly seq "
        << kill_seq;

    // SIGKILL equivalent: the primary object vanishes, no checkpoint, no
    // goodbye. Everything the replica needs is already in its mirror.
    sp.primary.reset();

    auto promoted = replica->Promote(Opts(nullptr), sp.epoch, kill_seq);
    ASSERT_TRUE(promoted.ok()) << promoted.status().message();
    ExpectShadowEq(DumpShadow(**promoted), sp.shadows[k], "promoted state");

    // The promoted sampler is a real primary: it accepts writes into a
    // fresh epoch and survives a reopen with them.
    EXPECT_GT((*promoted)->epoch(), sp.epoch);
    auto id = (*promoted)->Insert(42);
    ASSERT_TRUE(id.ok());
    (*promoted).reset();
    auto reopened = RecoveryManager::Open("/rep", Opts(&env));
    ASSERT_TRUE(reopened.ok()) << reopened.status().message();
    auto w = (*reopened)->GetWeight(*id);
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(w->mult, 42u);

    // The spent handle refuses everything.
    EXPECT_FALSE(replica->ApplySegment(sp.epoch, "").ok());
    EXPECT_FALSE(replica->Promote(Opts(nullptr), 0, 0).ok());
  }
}

// The torn-segment matrix: a multi-record segment cut at every interior
// byte. The replica must apply exactly the whole-record prefix, report
// the torn tail (kBadSnapshot) without poisoning itself, and converge
// once the tail is re-shipped — byte-identical to the primary.
TEST(ReplicaChaosTest, TornMidShipSegmentAtEveryByte) {
  MemEnv env;
  ScriptedPrimary sp = BuildScriptedPrimary(&env);
  ReplicationLog log(sp.primary.get());

  // One maximal segment holding all scripted records.
  uint64_t probe_sub = 0;
  auto probe = BootstrapReplica(&env, "/probe", &log, &probe_sub);
  auto full = log.ReadSegment(probe_sub, sp.epoch, sp.first_seq, 1u << 20);
  ASSERT_TRUE(full.status.ok());
  ASSERT_EQ(full.next_seq, sp.first_seq + kRecords);
  const std::string& bytes = full.bytes;

  // Record boundaries inside the segment, for oracle bookkeeping.
  std::vector<persist::WalRecord> records;
  uint64_t valid = 0;
  persist::ParseWalRecords(bytes, sp.first_seq, &records, &valid);
  ASSERT_EQ(records.size(), static_cast<size_t>(kRecords));
  ASSERT_EQ(valid, bytes.size());
  std::vector<size_t> boundary(kRecords + 1, 0);  // bytes of first r records
  for (int r = 1; r <= kRecords; ++r) {
    boundary[r] =
        boundary[r - 1] + 20 + 21 * records[r - 1].ops.size();
  }
  ASSERT_EQ(boundary[kRecords], bytes.size());

  for (size_t cut = 1; cut < bytes.size(); ++cut) {
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    MemEnv cut_env;
    // Fresh mirror per cut, bootstrapped from the same primary.
    uint64_t subscriber = 0;
    auto replica = BootstrapReplica(&cut_env, "/rep", &log, &subscriber);

    const int whole =
        static_cast<int>(std::upper_bound(boundary.begin(), boundary.end(),
                                          cut) -
                         boundary.begin()) -
        1;
    Status st = replica->ApplySegment(sp.epoch, bytes.substr(0, cut));
    if (static_cast<size_t>(boundary[whole]) == cut) {
      EXPECT_TRUE(st.ok()) << st.message();
    } else if (whole == 0) {
      // Torn first record: nothing usable, whole segment rejected.
      EXPECT_EQ(st.code(), StatusCode::kBadSnapshot);
    } else {
      // Whole-record prefix applied, torn tail reported.
      EXPECT_EQ(st.code(), StatusCode::kBadSnapshot);
    }
    EXPECT_EQ(replica->applied_seq(),
              sp.first_seq - 1 + static_cast<uint64_t>(whole));
    EXPECT_FALSE(replica->divergent());

    // Re-ship from the replica's position; it must converge exactly.
    ASSERT_TRUE(
        replica->ApplySegment(sp.epoch, bytes.substr(boundary[whole])).ok());
    EXPECT_EQ(replica->applied_seq(), sp.first_seq - 1 + kRecords);
    ExpectShadowEq(DumpShadow(*replica), sp.shadows[kRecords],
                   "converged replica");
  }
}

TEST(ReplicaChaosTest, StaleReplicaRefusesPromotion) {
  MemEnv env;
  ScriptedPrimary sp = BuildScriptedPrimary(&env);
  ReplicationLog log(sp.primary.get());
  uint64_t subscriber = 0;
  auto replica = BootstrapReplica(&env, "/rep", &log, &subscriber);

  // Applied through record 3 of kRecords.
  const uint64_t have = sp.first_seq + 2;
  while (replica->applied_seq() < have) {
    auto seg =
        log.ReadSegment(subscriber, sp.epoch, replica->applied_seq() + 1, 1);
    ASSERT_TRUE(seg.status.ok());
    ASSERT_TRUE(replica->ApplySegment(sp.epoch, seg.bytes).ok());
  }

  // Behind the required floor in-epoch, and behind a future epoch.
  EXPECT_EQ(replica->Promote(Opts(nullptr), sp.epoch, have + 1)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      replica->Promote(Opts(nullptr), sp.epoch + 1, 0).status().code(),
      StatusCode::kInvalidArgument);

  // A never-bootstrapped replica refuses outright.
  auto fresh = ReplicaSampler::Create(&env, "/fresh", "halt", SamplerSpec{});
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((*fresh)->Promote(Opts(nullptr), 0, 0).status().code(),
            StatusCode::kInvalidArgument);

  // The refusals left the replica usable: promotion at its true position
  // still succeeds.
  auto promoted = replica->Promote(Opts(nullptr), sp.epoch, have);
  ASSERT_TRUE(promoted.ok()) << promoted.status().message();
  ExpectShadowEq(DumpShadow(**promoted), sp.shadows[3], "promoted at floor");
}

TEST(ReplicaChaosTest, DivergentReplicaPoisonsItselfAndRefusesPromotion) {
  // Bootstrap the replica from the WRONG primary (same epoch number,
  // different state), then feed it the right primary's records: the very
  // first logged insert replays to a different id, and the replica must
  // refuse loudly rather than serve subtly wrong state.
  MemEnv env;
  ScriptedPrimary sp = BuildScriptedPrimary(&env);
  ReplicationLog log(sp.primary.get());

  auto wrong_opened = RecoveryManager::Open("/wrong", Opts(&env));
  ASSERT_TRUE(wrong_opened.ok());
  std::unique_ptr<DurableSampler> wrong = std::move(*wrong_opened);
  // Same epoch as sp.epoch (both directories went through one rotation),
  // but empty where the real primary has 8 base items.
  ASSERT_TRUE(wrong->Checkpoint().ok());
  ASSERT_EQ(wrong->epoch(), sp.epoch);
  ReplicationLog wrong_log(wrong.get());
  uint64_t subscriber = 0;
  auto replica = BootstrapReplica(&env, "/rep", &wrong_log, &subscriber);

  auto seg = log.ReadSegment(log.Subscribe(0, 0, 0).subscriber, sp.epoch,
                             sp.first_seq, 1u << 20);
  ASSERT_TRUE(seg.status.ok());
  Status st = replica->ApplySegment(sp.epoch, seg.bytes);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(replica->divergent());
  // Poisoned: further applies and promotion refuse.
  EXPECT_FALSE(replica->ApplySegment(sp.epoch, "").ok());
  EXPECT_EQ(replica->Promote(Opts(nullptr), 0, 0).status().code(),
            StatusCode::kBadSnapshot);
}

// The real thing: a forked primary server killed with SIGKILL under
// min_replica_acks=1 traffic. Every insert the parent saw acknowledged
// was, by the ack rule, applied by the replica before the reply left the
// primary — so after promotion every one of them must be served.
TEST(ReplicaChaosTest, SigkilledPrimaryFailsOverWithZeroAckedLoss) {
  char tmpl[] = "/tmp/dpss_replica_chaos_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string dir(tmpl);
  const std::string port_path = dir + "/primary.port";

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: a durable primary that refuses to ack until one replica has
    // applied. No gtest machinery in here — report via the port file and
    // die only by SIGKILL.
    server::ServerOptions opts;
    opts.port = 0;
    opts.io_threads = 2;
    opts.backend = "sharded4:halt";
    opts.batch_window_us = 0;
    opts.durable_dir = dir + "/primary";
    opts.min_replica_acks = 1;
    auto started = server::Server::Start(opts);
    if (!started.ok()) _exit(3);
    std::FILE* f = std::fopen(port_path.c_str(), "w");
    if (f == nullptr) _exit(4);
    std::fprintf(f, "%d\n", (*started)->port());
    std::fclose(f);
    for (;;) pause();
  }

  // Parent: wait for the child's port.
  int primary_port = 0;
  for (int waited = 0; waited < 10000 && primary_port == 0; waited += 50) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::FILE* f = std::fopen(port_path.c_str(), "r");
    if (f != nullptr) {
      if (std::fscanf(f, "%d", &primary_port) != 1) primary_port = 0;
      std::fclose(f);
    }
  }
  if (primary_port == 0) {
    kill(child, SIGKILL);
    waitpid(child, nullptr, 0);
    FAIL() << "forked primary never published its port";
  }

  server::ServerOptions ropts;
  ropts.port = 0;
  ropts.io_threads = 2;
  ropts.backend = "sharded4:halt";
  ropts.batch_window_us = 0;
  ropts.durable_dir = dir + "/mirror";
  ropts.replica_of = "127.0.0.1:" + std::to_string(primary_port);
  auto rstarted = server::Server::Start(ropts);
  ASSERT_TRUE(rstarted.ok()) << rstarted.status().message();
  std::unique_ptr<server::Server> replica = std::move(*rstarted);

  // Acked writes through the primary. min_replica_acks=1 means each ok
  // reply proves the replica applied the write — the survival set.
  std::vector<std::pair<ItemId, Weight>> acked;
  {
    auto c = server::Client::Connect("127.0.0.1", primary_port);
    ASSERT_TRUE(c.ok());
    for (int i = 0; i < 60; ++i) {
      const Weight w{static_cast<uint64_t>(i % 17 + 1), 0};
      auto id = (*c)->Insert(w);
      ASSERT_TRUE(id.ok()) << id.status().message();
      acked.emplace_back(*id, w);
    }
  }

  ASSERT_EQ(kill(child, SIGKILL), 0);
  ASSERT_EQ(waitpid(child, nullptr, 0), child);

  Status promoted = replica->Promote(0, 0);
  ASSERT_TRUE(promoted.ok()) << promoted.message();
  EXPECT_FALSE(replica->is_replica());

  auto c = server::Client::Connect("127.0.0.1", replica->port());
  ASSERT_TRUE(c.ok());
  for (const auto& [id, w] : acked) {
    auto got = (*c)->GetWeight(id);
    ASSERT_TRUE(got.ok()) << "acked id " << id << " lost in failover";
    EXPECT_EQ(got->mult, w.mult);
    EXPECT_EQ(got->exp, w.exp);
  }
  // The promoted server takes writes.
  auto fresh = (*c)->Insert(Weight{5, 0});
  EXPECT_TRUE(fresh.ok()) << fresh.status().message();
}

}  // namespace
}  // namespace replica
}  // namespace dpss
