// Differential / fuzz-style integration tests: randomized operation
// sequences across weight regimes and seeds, validating (a) structural
// invariants, (b) agreement of realized mean sample sizes with the exact
// expectation, and (c) per-item marginals against the analytic
// probabilities — the full stack from BigUInt up to DpssSampler in one
// harness.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/dpss_sampler.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace dpss {
namespace {

struct FuzzConfig {
  uint64_t seed;
  int weight_regime;  // 0 = small, 1 = uniform wide, 2 = power heavy-tail,
                      // 3 = near-duplicates, 4 = mixed with zeros
  bool deamortized;
};

uint64_t DrawWeight(int regime, RandomEngine& rng) {
  switch (regime) {
    case 0:
      return rng.NextBelow(8);  // includes zero weights
    case 1:
      return 1 + rng.NextBelow((uint64_t{1} << 48) - 1);
    case 2: {
      const int e = static_cast<int>(rng.NextBelow(60));
      return uint64_t{1} << e;
    }
    case 3:
      return 4096 + rng.NextBelow(2);
    default:
      return rng.NextBelow(10) == 0 ? 0 : 1 + rng.NextBelow(1u << 20);
  }
}

class FuzzTest : public ::testing::TestWithParam<FuzzConfig> {};

TEST_P(FuzzTest, RandomOpsKeepExactSemantics) {
  const FuzzConfig& cfg = GetParam();
  DpssSampler::Options o;
  o.seed = cfg.seed;
  o.deamortized_rebuild = cfg.deamortized;
  DpssSampler s(o);
  RandomEngine rng(cfg.seed * 31 + 7);
  std::vector<DpssSampler::ItemId> live;

  for (int step = 0; step < 3000; ++step) {
    const uint64_t op = rng.NextBelow(100);
    if (op < 58 || live.empty()) {
      live.push_back(s.Insert(DrawWeight(cfg.weight_regime, rng)));
    } else {
      const size_t idx = rng.NextBelow(live.size());
      s.Erase(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
    if (step % 750 == 0) s.CheckInvariants();
  }
  s.CheckInvariants();
  ASSERT_EQ(s.size(), live.size());

  // Aggregate check: realized mean sample size vs exact μ for three
  // parameter settings spanning the regimes.
  const std::vector<std::pair<Rational64, Rational64>> params = {
      {{1, 1}, {0, 1}},
      {{1, 16}, {5, 3}},
      {{0, 1}, {uint64_t{1} << 24, 1}},
  };
  for (const auto& [alpha, beta] : params) {
    const double mu = s.ExpectedSampleSize(alpha, beta);
    if (mu > 400.0) continue;  // keep runtime bounded
    const uint64_t trials = 4000;
    uint64_t total = 0;
    RandomEngine qrng(cfg.seed * 97 + 13);
    for (uint64_t t = 0; t < trials; ++t) {
      total += s.Sample(alpha, beta, qrng).size();
    }
    const double mean = static_cast<double>(total) / trials;
    const double sigma = std::sqrt((mu + 0.25) / trials);
    EXPECT_NEAR(mean, mu, 5.0 * sigma + 0.02)
        << "seed=" << cfg.seed << " regime=" << cfg.weight_regime
        << " alpha=" << alpha.num << "/" << alpha.den;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FuzzTest,
    ::testing::Values(FuzzConfig{1, 0, false}, FuzzConfig{2, 1, false},
                      FuzzConfig{3, 2, false}, FuzzConfig{4, 3, false},
                      FuzzConfig{5, 4, false}, FuzzConfig{6, 0, true},
                      FuzzConfig{7, 1, true}, FuzzConfig{8, 2, true},
                      FuzzConfig{9, 3, true}, FuzzConfig{10, 4, true},
                      FuzzConfig{11, 1, false}, FuzzConfig{12, 2, true}));

// Marginal spot-check after churn: a fresh probe item's frequency matches
// its exact probability in every regime.
class MarginalAfterChurnTest : public ::testing::TestWithParam<int> {};

TEST_P(MarginalAfterChurnTest, ProbeFrequencyMatches) {
  const int regime = GetParam();
  DpssSampler s(1000 + regime);
  RandomEngine rng(2000 + regime);
  std::vector<DpssSampler::ItemId> live;
  for (int step = 0; step < 1500; ++step) {
    if (live.empty() || rng.NextBelow(10) < 6) {
      live.push_back(s.Insert(DrawWeight(regime, rng)));
    } else {
      const size_t idx = rng.NextBelow(live.size());
      s.Erase(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  const auto probe = s.Insert(777);
  const Rational64 alpha{1, 3}, beta{41, 7};
  BigUInt wnum, wden;
  s.ComputeW(alpha, beta, &wnum, &wden);
  const double p =
      std::min(1.0, 777.0 * BigRational(wden, wnum).ToDouble());
  RandomEngine qrng(3000 + regime);
  const uint64_t trials = 40000;
  uint64_t hits = 0;
  for (uint64_t t = 0; t < trials; ++t) {
    for (auto id : s.Sample(alpha, beta, qrng)) hits += id == probe;
  }
  EXPECT_LE(std::abs(testing_util::BernoulliZScore(hits, trials, p)), 4.75)
      << "regime " << regime;
}

INSTANTIATE_TEST_SUITE_P(Regimes, MarginalAfterChurnTest,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace dpss
