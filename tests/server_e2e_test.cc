// End-to-end tests for the serving layer (server/server.h): an in-process
// dpss-serverd on an ephemeral loopback port driven through the real wire
// protocol — mutation/query round trips, read-your-writes through the
// group-commit batcher, admission-control shedding, graceful drain
// semantics, and zero acked-write loss across a durable restart.

#include <stdlib.h>
#include <unistd.h>

#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "server/client.h"
#include "server/server.h"

namespace dpss {
namespace server {
namespace {

ServerOptions FastOptions() {
  ServerOptions opts;
  opts.port = 0;
  opts.io_threads = 2;
  opts.backend = "sharded4:halt";
  opts.batch_window_us = 0;  // no artificial latency in unit tests
  return opts;
}

std::unique_ptr<Server> MustStart(const ServerOptions& opts) {
  auto started = Server::Start(opts);
  EXPECT_TRUE(started.ok()) << started.status().message();
  return started.ok() ? std::move(*started) : nullptr;
}

std::unique_ptr<Client> Dial(const Server& server) {
  auto c = Client::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(c.ok());
  return std::move(*c);
}

// Pins the "0 means what?" audit of the two millisecond knobs
// (server/server.h): drain_flush_grace_ms == 0 is a deliberate fast-drain
// setting and must be accepted, while replica_ack_timeout_ms == 0 with
// replica acks required would expire every parked reply on arrival, so
// Start rejects it up front.
TEST(ServerOptionsTest, ZeroAckTimeoutWithAcksRequiredIsRejected) {
  ServerOptions opts = FastOptions();
  opts.min_replica_acks = 1;
  opts.replica_ack_timeout_ms = 0;
  auto started = Server::Start(opts);
  ASSERT_FALSE(started.ok());
  EXPECT_EQ(started.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(std::string(started.status().message())
                .find("replica_ack_timeout_ms"),
            std::string::npos)
      << started.status().message();
}

TEST(ServerOptionsTest, ZeroAckTimeoutWithoutAcksIsAccepted) {
  // With acks off the field is unused; 0 must not be rejected.
  ServerOptions opts = FastOptions();
  opts.min_replica_acks = 0;
  opts.replica_ack_timeout_ms = 0;
  auto server = MustStart(opts);
  ASSERT_NE(server, nullptr);
}

TEST(ServerOptionsTest, ZeroDrainFlushGraceIsAValidFastDrain) {
  ServerOptions opts = FastOptions();
  opts.drain_flush_grace_ms = 0;
  auto server = MustStart(opts);
  ASSERT_NE(server, nullptr);
  auto client = Dial(*server);
  auto id = client->Insert(Weight{7, 0});
  ASSERT_TRUE(id.ok()) << id.status().message();
  // A clean drain with zero grace: admitted work still finishes.
  server->RequestDrain();
  server->WaitUntilStopped();
  EXPECT_TRUE(server->stopped());
}

TEST(ServerE2eTest, MutationsAndQueriesRoundTrip) {
  auto server = MustStart(FastOptions());
  ASSERT_NE(server, nullptr);
  auto client = Dial(*server);

  // Insert, read back, update, read back, sample, erase, stale read.
  auto id = client->Insert(Weight{10, 0});
  ASSERT_TRUE(id.ok()) << id.status().message();
  auto w = client->GetWeight(*id);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->mult, 10u);

  ASSERT_TRUE(client->SetWeight(*id, Weight{3, 5}).ok());
  w = client->GetWeight(*id);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->mult, 3u);
  EXPECT_EQ(w->exp, 5u);

  // With a single heavy item and alpha=1, beta=0 the subset is {item} with
  // probability 1 (p = w/W = 1).
  auto sample = client->Sample(Rational64{1, 1}, Rational64{0, 1});
  ASSERT_TRUE(sample.ok()) << sample.status().message();
  ASSERT_EQ(sample->size(), 1u);
  EXPECT_EQ((*sample)[0], *id);

  ASSERT_TRUE(client->Erase(*id).ok());
  EXPECT_EQ(client->GetWeight(*id).status().code(), StatusCode::kInvalidId);
  EXPECT_EQ(client->Erase(*id).code(), StatusCode::kInvalidId);
}

TEST(ServerE2eTest, ErrorInBatchDoesNotPoisonNeighbors) {
  auto server = MustStart(FastOptions());
  ASSERT_NE(server, nullptr);
  auto client = Dial(*server);
  // Pipeline [insert, erase-of-garbage, insert]: the bad op must fail
  // alone; both inserts succeed (the ApplyBatch error-resume path).
  Request ins;
  ins.type = MsgType::kInsert;
  ins.weight = Weight{7, 0};
  Request bad;
  bad.type = MsgType::kErase;
  bad.id = 0x7fffffffffffull;  // never issued
  const uint64_t s1 = client->SendRequest(ins);
  const uint64_t s2 = client->SendRequest(bad);
  const uint64_t s3 = client->SendRequest(ins);
  std::map<uint64_t, WireStatus> outcomes;
  for (int i = 0; i < 3; ++i) {
    auto resp = client->ReadResponse();
    ASSERT_TRUE(resp.ok());
    outcomes[resp->seq] = resp->status;
  }
  EXPECT_EQ(outcomes[s1], WireStatus::kOk);
  EXPECT_EQ(outcomes[s2], WireStatus::kInvalidId);
  EXPECT_EQ(outcomes[s3], WireStatus::kOk);
}

TEST(ServerE2eTest, StatsReflectServedTraffic) {
  auto server = MustStart(FastOptions());
  ASSERT_NE(server, nullptr);
  auto client = Dial(*server);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client->Insert(Weight{static_cast<uint64_t>(i + 1), 0}).ok());
  }
  auto json = client->Stats();
  ASSERT_TRUE(json.ok()) << json.status().message();
  // The document must carry the served-traffic counters and the sharded
  // backend's occupancy rows (the ShardOccupancy accessor path).
  EXPECT_NE(json->find("\"insert\": {\"count\": 10"), std::string::npos)
      << *json;
  EXPECT_NE(json->find("\"size\": 10"), std::string::npos);
  EXPECT_NE(json->find("\"shard\": 3"), std::string::npos)
      << "expected 4 shard occupancy rows in " << *json;
  // Server-side view agrees.
  EXPECT_EQ(server->shed_count(), 0u);
}

TEST(ServerE2eTest, OverloadShedsInsteadOfStalling) {
  ServerOptions opts = FastOptions();
  opts.max_queue_depth = 4;
  opts.max_conn_pending = 1024;
  // Make the batcher slow enough that a burst overruns the 4-deep queue.
  opts.batch_window_us = 2000;
  opts.max_batch_ops = 4;
  auto server = MustStart(opts);
  ASSERT_NE(server, nullptr);
  auto client = Dial(*server);
  constexpr int kBurst = 512;
  for (int i = 0; i < kBurst; ++i) {
    Request req;
    req.type = MsgType::kInsert;
    req.weight = Weight{1, 0};
    client->SendRequest(req);
  }
  int ok = 0, shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto resp = client->ReadResponse();
    ASSERT_TRUE(resp.ok()) << resp.status().message();
    if (resp->status == WireStatus::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(resp->status, WireStatus::kShed);
      ++shed;
    }
  }
  // Every request was answered (no stall), some were admitted, and the
  // queue bound forced real shedding.
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0);
  EXPECT_EQ(server->shed_count(), static_cast<uint64_t>(shed));
}

TEST(ServerE2eTest, DrainRejectsNewWorkAndStops) {
  ServerOptions opts = FastOptions();
  opts.max_conn_pending = 1 << 20;  // the test pipelines aggressively
  opts.max_outbox_bytes = 64u << 20;
  // The admitted heavy samples below produce megabytes of replies that
  // this test reads serially after the drain. The drain epilogue only
  // flushes unread replies for drain_flush_grace_ms before closing the
  // socket — the old hardcoded 2s server constant made this test a race
  // against the reader's speed under ASan. Pin the grace far above any
  // sanitizer's read pace; correctness ordering is carried by the pong
  // fence above the drain, not by this timer.
  opts.drain_flush_grace_ms = 120000;
  auto server = MustStart(opts);
  ASSERT_NE(server, nullptr);
  auto client = Dial(*server);

  // Populate 10k unit-weight items (read acks per chunk to stay under the
  // queue bound).
  constexpr int kItems = 10000;
  Request ins;
  ins.type = MsgType::kInsert;
  ins.weight = Weight{1, 0};
  for (int chunk = 0; chunk < 10; ++chunk) {
    for (int i = 0; i < kItems / 10; ++i) client->SendRequest(ins);
    ASSERT_TRUE(client->Flush().ok());
    for (int i = 0; i < kItems / 10; ++i) {
      auto resp = client->ReadResponse();
      ASSERT_TRUE(resp.ok());
      ASSERT_EQ(resp->status, WireStatus::kOk);
    }
  }

  // Queue 100 full-population samples: with α=0, β=1 every unit-weight
  // item has inclusion probability min(1, w/(α·Σw + β)) = 1, so each
  // query materializes 10k ids — tens of milliseconds of admitted work
  // that keeps the batcher in the draining phase while the late requests
  // below arrive.
  constexpr int kHeavy = 100;
  Request heavy;
  heavy.type = MsgType::kSample;
  heavy.alpha = Rational64{0, 1};
  heavy.beta = Rational64{1, 1};
  heavy.max_ids = kItems;
  for (int i = 0; i < kHeavy; ++i) client->SendRequest(heavy);
  // Frames on one connection parse in FIFO order, so a pong proves every
  // preceding sample frame was parsed — and therefore admitted — before
  // the drain below flips the phase.
  Request ping;
  ping.type = MsgType::kPing;
  const uint64_t ping_seq = client->SendRequest(ping);
  ASSERT_TRUE(client->Flush().ok());
  {
    auto pong = client->ReadResponse();
    ASSERT_TRUE(pong.ok());
    ASSERT_EQ(pong->seq, ping_seq);
    ASSERT_EQ(pong->status, WireStatus::kOk);
  }

  server->RequestDrain();
  // Requests parsed after the drain flag get kShuttingDown; the admitted
  // samples still complete and are answered.
  constexpr int kLate = 20;
  for (int i = 0; i < kLate; ++i) client->SendRequest(ins);
  ASSERT_TRUE(client->Flush().ok());
  int sampled = 0, shutdown = 0;
  for (int i = 0; i < kHeavy + kLate; ++i) {
    auto resp = client->ReadResponse();
    ASSERT_TRUE(resp.ok()) << "response " << i << " lost to the drain: "
                           << resp.status().message();
    if (resp->status == WireStatus::kOk &&
        resp->request_type == MsgType::kSample) {
      EXPECT_EQ(resp->ids.size(), static_cast<size_t>(kItems));
      ++sampled;
    }
    if (resp->status == WireStatus::kShuttingDown) ++shutdown;
  }
  EXPECT_EQ(sampled, kHeavy) << "an admitted query lost its ack";
  EXPECT_GT(shutdown, 0) << "no post-drain request was rejected";
  server->WaitUntilStopped();
  EXPECT_TRUE(server->stopped());
  // New connections are refused once the listeners are gone.
  auto late = Client::Connect("127.0.0.1", server->port());
  if (late.ok()) {
    EXPECT_FALSE((*late)->Ping().ok());
  }
}

TEST(ServerE2eTest, DrainFlushGraceBoundsSlowReaders) {
  // The inverse guarantee: a reader that never drains its replies cannot
  // wedge the drain. With a tiny grace the server must give up on the
  // slow socket and stop, rather than blocking WaitUntilStopped on it.
  ServerOptions opts = FastOptions();
  opts.max_conn_pending = 1 << 20;
  opts.max_outbox_bytes = 64u << 20;
  opts.drain_flush_grace_ms = 50;
  auto server = MustStart(opts);
  ASSERT_NE(server, nullptr);
  auto client = Dial(*server);
  Request ins;
  ins.type = MsgType::kInsert;
  ins.weight = Weight{1, 0};
  for (int i = 0; i < 2000; ++i) client->SendRequest(ins);
  ASSERT_TRUE(client->Flush().ok());
  // Replies pile up unread in the outbox; the drain must still complete.
  server->RequestDrain();
  server->WaitUntilStopped();
  EXPECT_TRUE(server->stopped());
}

TEST(ServerE2eTest, SignalSafeDrainTriggerWorks) {
  auto server = MustStart(FastOptions());
  ASSERT_NE(server, nullptr);
  // What a SIGTERM handler would invoke — just an eventfd write.
  server->NotifyDrainFromSignal();
  server->WaitUntilStopped();
  EXPECT_TRUE(server->stopped());
}

TEST(ServerE2eTest, AckedWritesSurviveDurableRestart) {
  char tmpl[] = "/tmp/dpss_server_e2e_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string dir = std::string(tmpl) + "/state";

  std::vector<std::pair<ItemId, Weight>> acked;
  {
    ServerOptions opts = FastOptions();
    opts.durable_dir = dir;
    auto server = MustStart(opts);
    ASSERT_NE(server, nullptr);
    auto client = Dial(*server);
    for (int i = 0; i < 200; ++i) {
      const Weight w{static_cast<uint64_t>(i % 37 + 1), 0};
      auto id = client->Insert(w);
      ASSERT_TRUE(id.ok());
      acked.emplace_back(*id, w);
    }
    // A few updates and erases so the WAL replay covers every op kind.
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(
          client->SetWeight(acked[i].first, Weight{99, 1}).ok());
      acked[i].second = Weight{99, 1};
    }
    for (int i = 190; i < 200; ++i) {
      ASSERT_TRUE(client->Erase(acked[i].first).ok());
    }
    acked.resize(190);
    server->RequestDrain();
    server->WaitUntilStopped();
  }
  {
    ServerOptions opts = FastOptions();
    opts.durable_dir = dir;
    auto server = MustStart(opts);
    ASSERT_NE(server, nullptr);
    auto client = Dial(*server);
    for (const auto& [id, w] : acked) {
      auto got = client->GetWeight(id);
      ASSERT_TRUE(got.ok()) << "acked id " << id << " lost across restart";
      EXPECT_EQ(got->mult, w.mult);
      EXPECT_EQ(got->exp, w.exp);
    }
    auto json = client->Stats();
    ASSERT_TRUE(json.ok());
    EXPECT_NE(json->find("\"size\": 190"), std::string::npos) << *json;
  }
}

TEST(ServerE2eTest, ConcurrentClientsSeeConsistentCounts) {
  auto server = MustStart(FastOptions());
  ASSERT_NE(server, nullptr);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server] {
      auto client = Dial(*server);
      for (int i = 0; i < kPerThread; ++i) {
        auto id = client->Insert(Weight{1, 0});
        ASSERT_TRUE(id.ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  auto client = Dial(*server);
  auto json = client->Stats();
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"size\": 1000"), std::string::npos) << *json;
}

}  // namespace
}  // namespace server
}  // namespace dpss
