// Dense property sweeps complementing the per-module unit tests:
// word-boundary arithmetic cases for BigUInt, exactness sweeps for the
// variate layer over a parameter grid, and cross-layer identities
// (enclosure midpoints vs sampled frequencies).

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "bigint/big_uint.h"
#include "bigint/rational.h"
#include "random/approx.h"
#include "random/bernoulli.h"
#include "random/geometric.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace dpss {
namespace {

using testing_util::BernoulliZScore;
using testing_util::RandomValue;

TEST(BigUIntBoundaryTest, ShiftsAtWordMultiples) {
  RandomEngine rng(1);
  for (int k : {0, 1, 63, 64, 65, 127, 128, 129, 191, 192, 256, 320}) {
    const BigUInt a = RandomValue(rng, 100);
    EXPECT_EQ((a << k) >> k, a) << k;
    EXPECT_EQ(BigUInt::Div(a << k, BigUInt::PowerOfTwo(k)), a) << k;
    EXPECT_TRUE(BigUInt::Mod(a << k, BigUInt::PowerOfTwo(k)).IsZero()) << k;
  }
}

TEST(BigUIntBoundaryTest, DivModNearBaseBoundaries) {
  // Divisors of the form 2^k ± 1 around word boundaries stress the Knuth-D
  // qhat estimate and the add-back path.
  RandomEngine rng(2);
  for (int k : {63, 64, 65, 127, 128, 129, 191, 192}) {
    for (int delta : {-1, 0, 1}) {
      BigUInt d = BigUInt::PowerOfTwo(k);
      if (delta == 1) d.Increment();
      if (delta == -1) d = BigUInt::Sub(d, BigUInt(uint64_t{1}));
      for (int iter = 0; iter < 50; ++iter) {
        const BigUInt a = RandomValue(rng, 1 + static_cast<int>(rng.NextBelow(320)));
        auto [q, r] = BigUInt::DivMod(a, d);
        ASSERT_EQ(q * d + r, a) << k << " " << delta;
        ASSERT_LT(BigUInt::Compare(r, d), 0);
      }
    }
  }
}

TEST(BigUIntBoundaryTest, AllOnesPatterns) {
  for (int bits : {64, 128, 192, 256}) {
    const BigUInt ones = BigUInt::Sub(BigUInt::PowerOfTwo(bits),
                                      BigUInt(uint64_t{1}));
    EXPECT_EQ(ones.BitLength(), bits);
    BigUInt inc = ones;
    inc.Increment();
    EXPECT_EQ(inc, BigUInt::PowerOfTwo(bits));
    EXPECT_EQ(BigUInt::Mul(ones, ones),
              BigUInt::Sub(BigUInt::PowerOfTwo(2 * bits),
                           BigUInt::PowerOfTwo(bits + 1)) +
                  BigUInt(uint64_t{1}));
  }
}

TEST(RationalBoundaryTest, Log2AroundExactPowers) {
  // x = 2^k ± ε for k spanning negative and positive ranges.
  for (int k : {-100, -5, -1, 0, 1, 5, 100}) {
    const int abs_k = k < 0 ? -k : k;
    BigUInt num = k >= 0 ? BigUInt::PowerOfTwo(abs_k) : BigUInt(uint64_t{1});
    BigUInt den = k >= 0 ? BigUInt(uint64_t{1}) : BigUInt::PowerOfTwo(abs_k);
    // Slightly above: (2^k·3+eps)/3.
    const BigRational above(BigUInt::MulU64(num, 3) + BigUInt(uint64_t{1}),
                            BigUInt::MulU64(den, 3));
    EXPECT_EQ(above.FloorLog2(), k) << k;
    EXPECT_EQ(above.CeilLog2(), k + 1) << k;
    // Slightly below: (2^k·3-eps)/3.
    const BigRational below(BigUInt::Sub(BigUInt::MulU64(num, 3),
                                         BigUInt(uint64_t{1})),
                            BigUInt::MulU64(den, 3));
    EXPECT_EQ(below.FloorLog2(), k - 1) << k;
    EXPECT_EQ(below.CeilLog2(), k) << k;
  }
}

// Frequency sweep: Bernoulli-pow over a dense (base, exponent) grid, with
// the expected value computed from the certified enclosure itself (the
// enclosure and the sampler must agree — a cross-layer identity).
TEST(VariatePropertyTest, PowFrequencyMatchesEnclosureMidpoint) {
  RandomEngine rng(3);
  const std::vector<std::pair<uint64_t, uint64_t>> bases = {
      {1, 2}, {2, 3}, {7, 8}, {15, 16}, {99, 101}, {1023, 1024}};
  for (const auto& [num, den] : bases) {
    for (uint64_t m : {2ull, 5ull, 17ull, 64ull}) {
      const FixedInterval enc = ApproxPow(BigUInt(num), BigUInt(den), m, 50);
      const double p = enc.MidToDouble();
      if (p < 0.01 || p > 0.99) continue;  // keep z-test power reasonable
      const uint64_t trials = 40000;
      uint64_t hits = 0;
      for (uint64_t t = 0; t < trials; ++t) {
        hits += SampleBernoulliPow(BigUInt(num), BigUInt(den), m, rng);
      }
      EXPECT_LE(std::abs(BernoulliZScore(hits, trials, p)), 4.75)
          << num << "/" << den << "^" << m;
    }
  }
}

// Mean identity: E[B-Geo(p, n)] = (1-(1-p)^n)/p computed via the exact
// enclosure machinery, checked against the sample mean on a grid.
TEST(VariatePropertyTest, BoundedGeoMeanSweep) {
  RandomEngine rng(4);
  const std::vector<std::pair<uint64_t, uint64_t>> ps = {
      {1, 2}, {1, 5}, {1, 17}, {3, 7}, {1, 64}};
  for (const auto& [num, den] : ps) {
    for (uint64_t n : {3ull, 10ull, 50ull}) {
      const double p = static_cast<double>(num) / static_cast<double>(den);
      const double expected =
          (1.0 - std::pow(1.0 - p, static_cast<double>(n))) / p;
      const uint64_t trials = 30000;
      double sum = 0;
      for (uint64_t t = 0; t < trials; ++t) {
        sum += static_cast<double>(
            SampleBoundedGeo(BigUInt(num), BigUInt(den), n, rng));
      }
      const double mean = sum / static_cast<double>(trials);
      const double sd_bound = std::sqrt(1.0 / (p * p) / trials) + 1e-3;
      EXPECT_NEAR(mean, expected, 5.0 * sd_bound)
          << num << "/" << den << " n=" << n;
    }
  }
}

// T-Geo conditional identity: T-Geo(p, n) must match B-Geo(p, n+1)
// conditioned on the value being <= n (the definition in §3.2), checked by
// comparing the two empirical head distributions.
TEST(VariatePropertyTest, TruncatedMatchesConditionedBounded) {
  RandomEngine r1(5), r2(6);
  const BigUInt num(uint64_t{1}), den(uint64_t{7});
  const uint64_t n = 9;
  const uint64_t trials = 150000;
  std::vector<uint64_t> truncated(n + 1, 0);
  std::vector<uint64_t> conditioned(n + 1, 0);
  uint64_t accepted = 0;
  for (uint64_t t = 0; t < trials; ++t) {
    truncated[SampleTruncatedGeo(num, den, n, r1)]++;
    const uint64_t b = SampleBoundedGeo(num, den, n + 1, r2);
    if (b <= n) {
      conditioned[b]++;
      ++accepted;
    }
  }
  for (uint64_t v = 1; v <= n; ++v) {
    const double p1 = static_cast<double>(truncated[v]) / trials;
    const double p2 = static_cast<double>(conditioned[v]) / accepted;
    // Compare with the combined binomial sd.
    const double sd = std::sqrt(p1 * (1 - p1) / trials +
                                p2 * (1 - p2) / accepted) + 1e-9;
    EXPECT_NEAR(p1, p2, 5.0 * sd) << v;
  }
}

// Enclosure monotonicity: raising the target precision must never widen an
// enclosure and must keep nesting (lo non-decreasing, hi non-increasing is
// not guaranteed across precisions since internal scales differ, but the
// interval must always contain the midpoint of the finest one).
TEST(VariatePropertyTest, EnclosureNesting) {
  const BigUInt qnum(uint64_t{1}), qden(uint64_t{200});
  const uint64_t n = 150;
  const FixedInterval fine = ApproxPStar(qnum, qden, n, 120);
  const double target = fine.MidToDouble();
  for (int t : {8, 16, 32, 64}) {
    const FixedInterval enc = ApproxPStar(qnum, qden, n, t);
    const double lo = std::ldexp(enc.lo.ToDouble(), -enc.frac_bits);
    const double hi = std::ldexp(enc.hi.ToDouble(), -enc.frac_bits);
    EXPECT_LE(lo, target + 1e-12) << t;
    EXPECT_GE(hi, target - 1e-12) << t;
    EXPECT_LE(enc.WidthToDouble(), std::ldexp(1.0, -t) * 1.0001) << t;
  }
}

}  // namespace
}  // namespace dpss
