// Unit tests for the relocatable arena (core/arena.h): bump allocation
// and alignment, the offset-0 null sentinel, page-granular dirty
// tracking through growth and adoption, the CollectArenaPages full/dirty
// image contract, and ArenaVec's std::vector-shaped surface.

#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/arena.h"

namespace dpss {
namespace {

TEST(ArenaTest, AllocationsAreAlignedZeroFilledAndNonNull) {
  Arena a;
  EXPECT_EQ(a.used_bytes(), 0u);
  EXPECT_EQ(a.page_count(), 0u);

  const uint64_t off1 = a.Allocate(10);
  const uint64_t off2 = a.Allocate(100);
  // Offset 0 is the null sentinel: no allocation may land there.
  EXPECT_NE(off1, 0u);
  EXPECT_NE(off2, 0u);
  EXPECT_EQ(off1 % Arena::kAlignment, 0u);
  EXPECT_EQ(off2 % Arena::kAlignment, 0u);
  EXPECT_GE(off2, off1 + 10);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.base()[off2 + i], 0) << "byte " << i << " not zero-filled";
  }
  EXPECT_EQ(a.used_bytes(), off2 + 100);
  EXPECT_EQ(a.capacity_bytes() % Arena::kPageSize, 0u);
}

TEST(ArenaTest, GrowthPreservesContentsAndOffsets) {
  Arena a;
  const uint64_t off = a.Allocate(64);
  std::memset(a.base() + off, 0x5a, 64);
  // Force several growth steps; the original bytes must survive at the
  // *same offset* even though base() moves.
  for (int i = 0; i < 6; ++i) a.Allocate(3 * Arena::kPageSize);
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(a.base()[off + i]), 0x5au);
  }
}

TEST(ArenaTest, DirtyTrackingIsPageGranular) {
  Arena a;
  a.Allocate(8 * Arena::kPageSize);
  a.ClearDirty();
  EXPECT_EQ(a.DirtyPageCount(), 0u);

  // A one-byte write dirties exactly one page; a straddling write two.
  a.MarkDirty(3 * Arena::kPageSize + 7, 1);
  EXPECT_EQ(a.DirtyPageCount(), 1u);
  EXPECT_TRUE(a.PageDirty(3));
  EXPECT_FALSE(a.PageDirty(2));
  a.MarkDirty(5 * Arena::kPageSize - 2, 4);
  EXPECT_TRUE(a.PageDirty(4));
  EXPECT_TRUE(a.PageDirty(5));
  EXPECT_EQ(a.DirtyPageCount(), 3u);

  a.ClearDirty();
  EXPECT_EQ(a.DirtyPageCount(), 0u);
  a.MarkAllDirty();
  EXPECT_EQ(a.DirtyPageCount(), a.page_count());
}

TEST(ArenaTest, AdoptedRegionStartsCleanAndMigratesOnGrowth) {
  // Simulate a copy-on-write file mapping: page-aligned heap bytes with a
  // keepalive that records its own destruction.
  const uint64_t kBytes = 2 * Arena::kPageSize;
  auto region = std::shared_ptr<char[]>(
      new (std::align_val_t{Arena::kPageSize}) char[kBytes],
      [](char* p) { operator delete[](p, std::align_val_t{Arena::kPageSize}); });
  std::memset(region.get(), 0x33, kBytes);
  const uint64_t used = Arena::kPageSize + 100;

  Arena a = Arena::Adopt(region.get(), used, region);
  EXPECT_EQ(a.used_bytes(), used);
  EXPECT_EQ(a.page_count(), 2u);
  // Adoption is the "just recovered" state: nothing is dirty yet.
  EXPECT_EQ(a.DirtyPageCount(), 0u);
  EXPECT_EQ(a.base(), region.get());

  // Writes through the normal protocol dirty pages as usual.
  a.MarkDirty(0, 1);
  EXPECT_EQ(a.DirtyPageCount(), 1u);

  // Growing past the adopted capacity migrates to owned pages: contents
  // and clean/dirty state carry over, the mapping is released.
  const long refs_before = region.use_count();
  const uint64_t off = a.Allocate(4 * Arena::kPageSize);
  EXPECT_NE(a.base(), region.get());
  EXPECT_LT(region.use_count(), refs_before) << "keepalive not released";
  EXPECT_EQ(static_cast<unsigned char>(a.base()[5]), 0x33u);
  EXPECT_TRUE(a.PageDirty(0));
  EXPECT_NE(off, 0u);
}

TEST(ArenaTest, CollectFullThenDirtyIsChurnProportional) {
  Arena a;
  a.Allocate(4 * Arena::kPageSize);
  std::memset(a.base() + Arena::kAlignment, 0x77, 16);

  ArenaImage full;
  CollectArenaPages(&a, ArenaImageMode::kFull, &full);
  EXPECT_EQ(full.used_bytes, a.used_bytes());
  EXPECT_EQ(full.page_count, a.page_count());
  ASSERT_EQ(full.pages.size(), a.page_count());
  for (uint64_t i = 0; i < full.pages.size(); ++i) {
    EXPECT_EQ(full.pages[i].first, i);
    EXPECT_EQ(full.pages[i].second.size(), Arena::kPageSize);
  }
  EXPECT_EQ(static_cast<unsigned char>(full.pages[0].second[Arena::kAlignment]),
            0x77u);
  // Collection established the baseline.
  EXPECT_EQ(a.DirtyPageCount(), 0u);

  // Touch one page; a dirty collection carries exactly that page.
  a.base()[2 * Arena::kPageSize + 9] = 0x11;
  a.MarkDirty(2 * Arena::kPageSize + 9, 1);
  ArenaImage delta;
  CollectArenaPages(&a, ArenaImageMode::kDirty, &delta);
  ASSERT_EQ(delta.pages.size(), 1u);
  EXPECT_EQ(delta.pages[0].first, 2u);
  EXPECT_EQ(static_cast<unsigned char>(delta.pages[0].second[9]), 0x11u);
  EXPECT_EQ(a.DirtyPageCount(), 0u);

  // No churn => an empty delta.
  ArenaImage empty;
  CollectArenaPages(&a, ArenaImageMode::kDirty, &empty);
  EXPECT_TRUE(empty.pages.empty());
  EXPECT_EQ(empty.used_bytes, a.used_bytes());
}

TEST(ArenaTest, CollectedImageRoundTripsThroughResetForLoad) {
  Arena a;
  const uint64_t off = a.Allocate(Arena::kPageSize + 200);
  for (int i = 0; i < 200; ++i) a.base()[off + i] = static_cast<char>(i);
  ArenaImage img;
  CollectArenaPages(&a, ArenaImageMode::kFull, &img);

  // Rebuild a second arena from the image exactly as the snapshot loader
  // does: size it, then memcpy pages in at their indices.
  Arena b;
  b.ResetForLoad(img.used_bytes);
  EXPECT_EQ(b.page_count(), img.page_count);
  for (const auto& [index, bytes] : img.pages) {
    std::memcpy(b.base() + index * Arena::kPageSize, bytes.data(),
                bytes.size());
  }
  EXPECT_EQ(std::memcmp(a.base(), b.base(), a.used_bytes()), 0);
  // A freshly loaded arena is all-dirty: its provenance is unproven until
  // the next checkpoint collects it.
  EXPECT_EQ(b.DirtyPageCount(), b.page_count());

  // GrowForLoad extends without disturbing the prefix (the delta path
  // where used_bytes grew between checkpoints).
  const uint64_t old_used = b.used_bytes();
  b.GrowForLoad(old_used + 3 * Arena::kPageSize);
  EXPECT_EQ(std::memcmp(a.base(), b.base(), old_used), 0);
  EXPECT_EQ(b.base()[b.used_bytes() - 1], 0);
}

TEST(ArenaTest, PageRoundUp) {
  EXPECT_EQ(Arena::PageRoundUp(0), 0u);
  EXPECT_EQ(Arena::PageRoundUp(1), Arena::kPageSize);
  EXPECT_EQ(Arena::PageRoundUp(Arena::kPageSize), Arena::kPageSize);
  EXPECT_EQ(Arena::PageRoundUp(Arena::kPageSize + 1), 2 * Arena::kPageSize);
}

TEST(ArenaTest, MoveTransfersEverything) {
  Arena a;
  const uint64_t off = a.Allocate(100);
  a.base()[off] = 42;
  const uint64_t used = a.used_bytes();

  Arena b = std::move(a);
  EXPECT_EQ(b.used_bytes(), used);
  EXPECT_EQ(b.base()[off], 42);
  EXPECT_GT(b.DirtyPageCount(), 0u);
  EXPECT_EQ(a.used_bytes(), 0u);  // NOLINT(bugprone-use-after-move)
}

TEST(ArenaVecTest, BehavesLikeVectorAndTracksDirt) {
  Arena a;
  ArenaVec<uint32_t> v(&a);
  EXPECT_TRUE(v.empty());
  for (uint32_t i = 0; i < 1000; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 1000u);
  for (uint32_t i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i * 3);

  v.pop_back();
  EXPECT_EQ(v.size(), 999u);
  v.resize(1001);
  // The re-grown tail is value-initialized even where it re-exposes old
  // extent bytes.
  EXPECT_EQ(v[999], 0u);
  EXPECT_EQ(v[1000], 0u);

  // Element writes after a baseline mark their page dirty.
  a.ClearDirty();
  v[500] = 7;
  EXPECT_GE(a.DirtyPageCount(), 1u);
  const uint64_t elem_page = (v.offset() + 500 * sizeof(uint32_t)) /
                             Arena::kPageSize;
  EXPECT_TRUE(a.PageDirty(elem_page));
}

TEST(ArenaVecTest, AdoptStorageRebindsAfterRelocation) {
  // The restore protocol: element bytes live in the arena; the vector is
  // reconstructed purely from (offset, size, capacity) against a region
  // loaded at a different address.
  Arena a;
  ArenaVec<uint64_t> v(&a);
  for (uint64_t i = 0; i < 300; ++i) v.push_back(i * i);
  ArenaImage img;
  CollectArenaPages(&a, ArenaImageMode::kFull, &img);

  Arena b;
  b.ResetForLoad(img.used_bytes);
  for (const auto& [index, bytes] : img.pages) {
    std::memcpy(b.base() + index * Arena::kPageSize, bytes.data(),
                bytes.size());
  }
  ArenaVec<uint64_t> w;
  w.BindArena(&b);
  w.AdoptStorage(v.offset(), v.size(), v.capacity());
  ASSERT_EQ(w.size(), 300u);
  for (uint64_t i = 0; i < 300; ++i) ASSERT_EQ(w[i], i * i);
  w.push_back(1);
  EXPECT_EQ(w.back(), 1u);
}

}  // namespace
}  // namespace dpss
